package gateway

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mvml/internal/stats"
)

// AutoscalerConfig parameterises the gateway's autoscaler. Zero fields take
// the documented defaults.
type AutoscalerConfig struct {
	// Interval between evaluations (<=0: 500ms).
	Interval time.Duration
	// MinWorkers/MaxWorkers bound each shard's per-version worker pool
	// (<=0: 1 and 8).
	MinWorkers int
	MaxWorkers int
	// QueueHigh/QueueLow are admission-queue occupancy fractions: sustained
	// occupancy above QueueHigh reads as pressure, below QueueLow as slack
	// (<=0: 0.5 and 0.05).
	QueueHigh float64
	QueueLow  float64
	// P99Target is the routing-latency objective; a p99 above it reads as
	// pressure even with shallow queues (<=0: 250ms).
	P99Target time.Duration
	// P99Source, when set, supplies the p99 latency signal — typically a
	// tsdb recording rule evaluated over the span stream. A nil source or a
	// non-positive reading falls back to the gateway's own latency window.
	P99Source func() time.Duration
	// UpStreak/DownStreak are how many consecutive pressured (resp. slack)
	// evaluations trigger a scale-up (resp. scale-down). Scale-up reacts
	// fast, scale-down hesitates — flapping costs more than idling
	// (<=0: 2 and 8).
	UpStreak   int
	DownStreak int
	// MinShards/MaxShards bound whole-shard scaling (<=0: 1 and 8). Shard
	// spawn/retire only happens when SpawnShard is set.
	MinShards int
	MaxShards int
	// SpawnShard builds a new shard for the given ring id when every
	// existing shard is already at MaxWorkers. nil disables shard scaling
	// (worker pools still resize).
	SpawnShard func(id string) (ShardControl, error)
	// OnEvent, when set, observes every applied action (demo logging).
	OnEvent func(ScaleEvent)
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 0.5
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 0.05
	}
	if c.P99Target <= 0 {
		c.P99Target = 250 * time.Millisecond
	}
	if c.UpStreak <= 0 {
		c.UpStreak = 2
	}
	if c.DownStreak <= 0 {
		c.DownStreak = 8
	}
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 8
	}
	return c
}

// ScaleEvent is one applied autoscaling action.
type ScaleEvent struct {
	T       time.Time `json:"-"`
	Kind    string    `json:"kind"` // grow | shrink | spawn | retire
	Shard   string    `json:"shard"`
	Workers int       `json:"workers,omitempty"`
	Reason  string    `json:"reason"`
}

// shardSignal is one shard's pressure snapshot.
type shardSignal struct {
	ID        string
	QueueFrac float64
	Workers   int
	Draining  bool
}

// scaleSignals is everything one autoscaler evaluation sees.
type scaleSignals struct {
	Shards []shardSignal // sorted by ID for deterministic tie-breaks
	P99    time.Duration
}

// scaleAction is a decided (not yet applied) scaling step.
type scaleAction struct {
	Kind    string // grow | shrink | spawn | retire | none
	Shard   string
	Workers int // target per-version pool size for grow/shrink
	Reason  string
}

// decide is the autoscaling policy as a pure function: signals and streak
// counters in, one action out. Purity is what makes the policy unit-testable
// without spinning up servers.
//
// Pressure (p99 over target, or any queue over QueueHigh) sustained for
// UpStreak evaluations grows the hottest shard's pools by one worker; when
// the hottest shard is already at MaxWorkers a new shard is spawned instead.
// Slack sustained for DownStreak evaluations shrinks the coldest shard; when
// it is already at MinWorkers and more than MinShards remain, the coldest
// shard is retired. One action per evaluation, always — a single step then a
// fresh look beats a big bang from stale signals.
func decide(cfg AutoscalerConfig, sig scaleSignals, upStreak, downStreak int) scaleAction {
	live := make([]shardSignal, 0, len(sig.Shards))
	for _, s := range sig.Shards {
		if !s.Draining {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return scaleAction{Kind: "none"}
	}
	maxFrac, hotIdx, coldIdx := 0.0, 0, 0
	for i, s := range live {
		if s.QueueFrac > maxFrac {
			maxFrac = s.QueueFrac
		}
		if s.QueueFrac > live[hotIdx].QueueFrac {
			hotIdx = i
		}
		if s.QueueFrac < live[coldIdx].QueueFrac {
			coldIdx = i
		}
	}
	hot := sig.P99 > cfg.P99Target || maxFrac >= cfg.QueueHigh
	cold := sig.P99 < cfg.P99Target/2 && maxFrac <= cfg.QueueLow

	switch {
	case hot && upStreak >= cfg.UpStreak:
		h := live[hotIdx]
		if h.Workers < cfg.MaxWorkers {
			return scaleAction{
				Kind: "grow", Shard: h.ID, Workers: h.Workers + 1,
				Reason: fmt.Sprintf("queue %.0f%%, p99 %v", maxFrac*100, sig.P99.Round(time.Millisecond)),
			}
		}
		if cfg.SpawnShard != nil && len(live) < cfg.MaxShards {
			return scaleAction{
				Kind:   "spawn",
				Reason: fmt.Sprintf("hottest shard %s at max workers (%d)", h.ID, h.Workers),
			}
		}
	case cold && downStreak >= cfg.DownStreak:
		c := live[coldIdx]
		if c.Workers > cfg.MinWorkers {
			return scaleAction{
				Kind: "shrink", Shard: c.ID, Workers: c.Workers - 1,
				Reason: fmt.Sprintf("queue %.0f%%, p99 %v", maxFrac*100, sig.P99.Round(time.Millisecond)),
			}
		}
		if cfg.SpawnShard != nil && len(live) > cfg.MinShards {
			return scaleAction{
				Kind: "retire", Shard: c.ID,
				Reason: fmt.Sprintf("coldest shard at min workers, %d shards live", len(live)),
			}
		}
	}
	return scaleAction{Kind: "none"}
}

// autoscaler runs the evaluation loop over a gateway's shards.
type autoscaler struct {
	cfg AutoscalerConfig
	gw  *Gateway

	done chan struct{}
	wg   sync.WaitGroup

	upStreak, downStreak int
	nextID               int
	retiring             []ShardControl
}

// StartAutoscaler attaches an autoscaler to the gateway and starts its loop.
// Call once; the autoscaler stops with the gateway's Close.
func (g *Gateway) StartAutoscaler(cfg AutoscalerConfig) {
	if g.scaler != nil {
		return
	}
	a := &autoscaler{cfg: cfg.withDefaults(), gw: g, done: make(chan struct{})}
	g.scaler = a
	a.wg.Add(1)
	go a.loop()
}

func (a *autoscaler) stop() {
	close(a.done)
	a.wg.Wait()
}

func (a *autoscaler) loop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			a.evaluate()
		}
	}
}

// signals gathers the current pressure snapshot. Only shards implementing
// ShardControl participate (a routing-only ShardClient cannot be resized).
func (a *autoscaler) signals() scaleSignals {
	g := a.gw
	g.mu.RLock()
	ctrls := make([]ShardControl, 0, len(g.shards))
	for _, sc := range g.shards {
		if c, ok := sc.(ShardControl); ok {
			ctrls = append(ctrls, c)
		}
	}
	g.mu.RUnlock()

	sig := scaleSignals{}
	for _, c := range ctrls {
		frac := 0.0
		if cap := c.QueueCapacity(); cap > 0 {
			frac = float64(c.QueueDepth()) / float64(cap)
		}
		sig.Shards = append(sig.Shards, shardSignal{
			ID: c.ID(), QueueFrac: frac, Workers: c.Workers(), Draining: c.Draining(),
		})
	}
	sort.Slice(sig.Shards, func(i, j int) bool { return sig.Shards[i].ID < sig.Shards[j].ID })
	if a.cfg.P99Source != nil {
		if p99 := a.cfg.P99Source(); p99 > 0 {
			sig.P99 = p99
			return sig
		}
	}
	if lat := g.latencySnapshot(); len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		sig.P99 = stats.NearestRank(lat, 0.99)
	}
	return sig
}

func (a *autoscaler) evaluate() {
	a.reapRetiring()
	sig := a.signals()
	if len(sig.Shards) == 0 {
		return
	}
	// Streaks advance on the raw pressure/slack classification so decide
	// stays pure; decide sees the post-increment values.
	maxFrac := 0.0
	for _, s := range sig.Shards {
		if !s.Draining && s.QueueFrac > maxFrac {
			maxFrac = s.QueueFrac
		}
	}
	if sig.P99 > a.cfg.P99Target || maxFrac >= a.cfg.QueueHigh {
		a.upStreak++
		a.downStreak = 0
	} else if sig.P99 < a.cfg.P99Target/2 && maxFrac <= a.cfg.QueueLow {
		a.downStreak++
		a.upStreak = 0
	} else {
		a.upStreak, a.downStreak = 0, 0
	}

	act := decide(a.cfg, sig, a.upStreak, a.downStreak)
	if act.Kind == "none" {
		return
	}
	a.upStreak, a.downStreak = 0, 0
	a.apply(act)
}

// apply executes one decided action against the live topology.
func (a *autoscaler) apply(act scaleAction) {
	g := a.gw
	ev := ScaleEvent{T: time.Now(), Kind: act.Kind, Shard: act.Shard, Workers: act.Workers, Reason: act.Reason}
	switch act.Kind {
	case "grow", "shrink":
		sc, _ := g.Shard(act.Shard).(ShardControl)
		if sc == nil {
			return
		}
		if err := sc.Resize(act.Workers); err != nil {
			return
		}
		g.m.workers(act.Shard).Set(float64(act.Workers))
	case "spawn":
		id := fmt.Sprintf("shard-auto%d", a.nextID)
		a.nextID++
		sc, err := a.cfg.SpawnShard(id)
		if err != nil {
			return
		}
		ev.Shard, ev.Workers = sc.ID(), sc.Workers()
		if err := g.AddShard(sc); err != nil {
			sc.Close()
			return
		}
		g.m.workers(sc.ID()).Set(float64(sc.Workers()))
	case "retire":
		// Zero-downtime retirement: off the ring first (no new primaries),
		// then drain-flag (successors preferred for stragglers), close only
		// once the queue is observed empty.
		removed, err := g.RemoveShard(act.Shard)
		if err != nil {
			return
		}
		sc, _ := removed.(ShardControl)
		if sc == nil {
			return
		}
		sc.SetDraining(true)
		a.retiring = append(a.retiring, sc)
	}
	a.emit(ev)
}

// reapRetiring closes retiring shards whose queues have drained.
func (a *autoscaler) reapRetiring() {
	kept := a.retiring[:0]
	for _, sc := range a.retiring {
		if sc.QueueDepth() == 0 {
			sc.Close()
			a.emit(ScaleEvent{T: time.Now(), Kind: "closed", Shard: sc.ID(), Reason: "drained"})
			continue
		}
		kept = append(kept, sc)
	}
	a.retiring = kept
}

func (a *autoscaler) emit(ev ScaleEvent) {
	if sink := a.gw.m.spans; sink != nil {
		t := sink.Now()
		sink.Emit(sink.NewTraceID(), 0, "scale", t, t, map[string]any{
			"action": ev.Kind, "shard": ev.Shard, "workers": ev.Workers, "reason": ev.Reason,
		})
	}
	if a.cfg.OnEvent != nil {
		a.cfg.OnEvent(ev)
	}
}
