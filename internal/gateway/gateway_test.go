package gateway

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mvml/internal/health"
	"mvml/internal/serve"
	"mvml/internal/tensor"
)

// fakeShard is a scriptable ShardControl: health level, drain state and a
// per-call classify script are all settable, so routing behaviour is tested
// without spinning up real servers.
type fakeShard struct {
	id string

	mu       sync.Mutex
	level    health.Level
	draining bool
	depth    int
	capacity int
	workers  int
	calls    int
	// fail returns the error for call number n (0-based), nil to answer.
	fail func(n int) error

	block   chan struct{} // non-nil: Classify waits on it...
	entered chan struct{} // ...after signalling here (when non-nil)
}

func newFakeShard(id string) *fakeShard {
	return &fakeShard{id: id, capacity: 64, workers: 2}
}

func (f *fakeShard) ID() string { return f.id }

func (f *fakeShard) Classify(*tensor.Tensor) (serve.Result, error) {
	if f.block != nil {
		if f.entered != nil {
			f.entered <- struct{}{}
		}
		<-f.block
	}
	f.mu.Lock()
	n := f.calls
	f.calls++
	fail := f.fail
	f.mu.Unlock()
	if fail != nil {
		if err := fail(n); err != nil {
			return serve.Result{}, err
		}
	}
	return serve.Result{Class: 7, Agreeing: 3, Proposals: 3}, nil
}

func (f *fakeShard) Level() health.Level {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.level
}

func (f *fakeShard) setLevel(l health.Level) {
	f.mu.Lock()
	f.level = l
	f.mu.Unlock()
}

func (f *fakeShard) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

func (f *fakeShard) QueueDepth() int    { return f.depth }
func (f *fakeShard) QueueCapacity() int { return f.capacity }
func (f *fakeShard) Workers() int       { return f.workers }

func (f *fakeShard) Resize(n int) error {
	f.mu.Lock()
	f.workers = n
	f.mu.Unlock()
	return nil
}

func (f *fakeShard) SetDraining(v bool) {
	f.mu.Lock()
	f.draining = v
	f.mu.Unlock()
}

func (f *fakeShard) Rejuvenate(string) error { return nil }
func (f *fakeShard) Compromise(int) error    { return nil }
func (f *fakeShard) Close()                  {}

func testGateway(t *testing.T, cfg Config, n int) (*Gateway, []*fakeShard) {
	t.Helper()
	gw := New(cfg, nil)
	shards := make([]*fakeShard, n)
	for i := range shards {
		shards[i] = newFakeShard(fmt.Sprintf("shard-%d", i))
		if err := gw.AddShard(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(gw.Close)
	return gw, shards
}

// ownerOf finds the fake shard owning key.
func ownerOf(gw *Gateway, shards []*fakeShard, key string) *fakeShard {
	id := gw.ring.Lookup(key)
	for _, s := range shards {
		if s.id == id {
			return s
		}
	}
	return nil
}

// keyFor finds a key owned by shard id, canary or not as requested.
func keyFor(t *testing.T, gw *Gateway, id string, canary bool) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe:%d", i)
		if gw.ring.Lookup(k) == id && isCanary(k) == canary {
			return k
		}
	}
	t.Fatalf("no %v-canary key found for %s", canary, id)
	return ""
}

func TestPlanHealthOrdering(t *testing.T) {
	gw, shards := testGateway(t, Config{FailoverDepth: 3}, 4)
	key := keyFor(t, gw, "shard-0", false)
	owner := ownerOf(gw, shards, key)

	// All healthy: the hash owner leads the plan.
	plan := gw.Plan(key)
	if len(plan) != 3 || plan[0].ID() != owner.id {
		t.Fatalf("healthy plan should lead with owner %s: %v", owner.id, planIDs(plan))
	}

	// Degraded owner: deprioritised but still present.
	owner.setLevel(health.Degraded)
	plan = gw.Plan(key)
	if plan[0].ID() == owner.id {
		t.Fatalf("degraded owner still leads the plan: %v", planIDs(plan))
	}
	if !contains(planIDs(plan), owner.id) {
		t.Fatalf("degraded owner dropped from the plan entirely: %v", planIDs(plan))
	}

	// Critical owner: last resort only.
	owner.setLevel(health.Critical)
	plan = gw.Plan(key)
	if plan[len(plan)-1].ID() != owner.id {
		t.Fatalf("critical owner should be last: %v", planIDs(plan))
	}

	// Draining healthy owner: also deprioritised.
	owner.setLevel(health.Healthy)
	owner.SetDraining(true)
	plan = gw.Plan(key)
	if plan[0].ID() == owner.id {
		t.Fatalf("draining owner still leads the plan: %v", planIDs(plan))
	}
}

// TestPlanCanaryTrickle pins the starvation fix: a deterministic slice of an
// unhealthy owner's keyspace still routes to it first, so its health engine
// keeps observing traffic and can recover.
func TestPlanCanaryTrickle(t *testing.T) {
	gw, shards := testGateway(t, Config{FailoverDepth: 3}, 4)
	key := keyFor(t, gw, "shard-0", true)
	owner := ownerOf(gw, shards, key)
	owner.setLevel(health.Degraded)
	if plan := gw.Plan(key); plan[0].ID() != owner.id {
		t.Fatalf("canary key abandoned its degraded owner: %v", planIDs(plan))
	}
	// Draining disables the canary — a retiring shard wants zero new traffic.
	owner.SetDraining(true)
	if plan := gw.Plan(key); plan[0].ID() == owner.id {
		t.Fatalf("canary key routed to a draining owner: %v", planIDs(plan))
	}
}

func TestClassifyFailoverAndBudget(t *testing.T) {
	gw, shards := testGateway(t, Config{FailoverDepth: 3, RetryRatio: 0.1, RetryBurst: 1}, 3)
	key := keyFor(t, gw, "shard-0", false)
	owner := ownerOf(gw, shards, key)
	owner.fail = func(int) error { return serve.ErrQueueFull }

	// First request: the burst allows one failover to the ring successor.
	res, info, err := gw.Classify(key, "c1", nil)
	if err != nil {
		t.Fatalf("failover should have answered: %v", err)
	}
	if res.Class != 7 || len(info.Attempts) != 2 || info.Attempts[0] != owner.id {
		t.Fatalf("unexpected route %+v", info)
	}
	if info.Shard == owner.id {
		t.Fatalf("answer attributed to the failing owner: %+v", info)
	}

	// Second request: budget dry (burst 1 spent, deposits only 0.1/request),
	// so the walk stops after the failing owner.
	_, info, err = gw.Classify(key, "c1", nil)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if len(info.Attempts) != 1 {
		t.Fatalf("budget-dry request should stop after one attempt: %+v", info)
	}

	// A different client has its own untouched budget.
	if _, _, err := gw.Classify(key, "c2", nil); err != nil {
		t.Fatalf("fresh client should fail over: %v", err)
	}
}

func TestClassifyShedsAtMaxInflight(t *testing.T) {
	gw, shards := testGateway(t, Config{MaxInflight: 1}, 1)
	shards[0].block = make(chan struct{})
	shards[0].entered = make(chan struct{}, 1)

	done := make(chan error, 1)
	go func() {
		_, _, err := gw.Classify("k1", "", nil)
		done <- err
	}()
	<-shards[0].entered // the first request is now inside the shard
	if _, _, err := gw.Classify("k2", "", nil); !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	close(shards[0].block)
	if err := <-done; err != nil {
		t.Fatalf("blocked request should have answered: %v", err)
	}
}

// TestFailoverDeterminism pins the acceptance property: the same ring
// membership, key sequence and failure schedule produce an identical routing
// trace on an independently built gateway.
func TestFailoverDeterminism(t *testing.T) {
	run := func() []RouteInfo {
		gw := New(Config{FailoverDepth: 3, RetryRatio: 1, RetryBurst: 8}, nil)
		defer gw.Close()
		for i := 0; i < 4; i++ {
			f := newFakeShard(fmt.Sprintf("shard-%d", i))
			if i == 1 {
				// Scripted failure schedule: shard-1 rejects calls 5..25.
				f.fail = func(n int) error {
					if n >= 5 && n <= 25 {
						return serve.ErrQueueFull
					}
					return nil
				}
			}
			if err := gw.AddShard(f); err != nil {
				t.Fatal(err)
			}
		}
		var trace []RouteInfo
		for i := 0; i < 300; i++ {
			_, info, err := gw.Classify(fmt.Sprintf("class:%d:%d", i%43, i), "det", nil)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			trace = append(trace, info)
		}
		return trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("routing traces diverge at request %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	// The schedule must actually have exercised failover.
	failovers := 0
	for _, info := range a {
		if len(info.Attempts) > 1 {
			failovers++
		}
	}
	if failovers == 0 {
		t.Fatal("failure schedule produced no failovers — the test proves nothing")
	}
}

func TestClassifyNoShards(t *testing.T) {
	gw := New(Config{}, nil)
	defer gw.Close()
	if _, _, err := gw.Classify("k", "", nil); !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
}

func TestRemoveShardFallsToSuccessor(t *testing.T) {
	gw, shards := testGateway(t, Config{}, 3)
	key := keyFor(t, gw, "shard-1", false)
	if _, err := gw.RemoveShard("shard-1"); err != nil {
		t.Fatal(err)
	}
	_, info, err := gw.Classify(key, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard == "shard-1" {
		t.Fatalf("removed shard still answering: %+v", info)
	}
	_ = shards
}

func TestRouteKeyStable(t *testing.T) {
	c := 7
	a := RouteKey(&serve.ClassifyRequest{Class: &c, Seed: 3})
	b := RouteKey(&serve.ClassifyRequest{Class: &c, Seed: 3})
	if a != b {
		t.Fatalf("route key not stable: %q vs %q", a, b)
	}
	other := RouteKey(&serve.ClassifyRequest{Class: &c, Seed: 4})
	if a == other {
		t.Fatalf("distinct requests share a key %q", a)
	}
	img1 := RouteKey(&serve.ClassifyRequest{Image: []float32{1, 2, 3}})
	img2 := RouteKey(&serve.ClassifyRequest{Image: []float32{1, 2, 4}})
	if img1 == img2 {
		t.Fatal("distinct images share a key")
	}
}

func planIDs(plan []ShardClient) []string {
	out := make([]string, len(plan))
	for i, sc := range plan {
		out[i] = sc.ID()
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
