package gateway

import (
	"sync/atomic"

	"mvml/internal/health"
	"mvml/internal/serve"
	"mvml/internal/tensor"
)

// ShardClient is the gateway's view of one serving shard: enough to route
// (Classify), to judge (Level, Draining) and to observe pressure (QueueDepth,
// QueueCapacity). LocalShard implements it over an in-process *serve.Server;
// an HTTP client implementing the same interface drops in when shards move
// out of process.
type ShardClient interface {
	// ID is the shard's stable ring identity (its serve.Config.ShardLabel).
	ID() string
	// Classify answers one request on this shard.
	Classify(img *tensor.Tensor) (serve.Result, error)
	// Level is the shard's current overall health verdict. Implementations
	// must be cheap (an atomic read) — the router consults it per attempt.
	Level() health.Level
	// Draining reports whether the shard is being retired: it still answers
	// whatever reaches it, but new traffic should prefer its ring successor.
	Draining() bool
	// QueueDepth / QueueCapacity expose the shard's admission backlog — the
	// autoscaler's primary pressure signal.
	QueueDepth() int
	QueueCapacity() int
}

// ShardControl extends ShardClient with the lifecycle operations the
// autoscaler and the demo's failure injection need. The gateway only demands
// ShardControl where it actually scales or drains; pure routing needs just
// ShardClient.
type ShardControl interface {
	ShardClient
	// Workers returns the current per-version worker-pool size.
	Workers() int
	// Resize sets the per-version worker-pool size (the autoscaler's
	// grow/shrink lever).
	Resize(perVersion int) error
	// SetDraining flips the advisory drain flag.
	SetDraining(v bool)
	// Rejuvenate restores every version of the shard to pristine weights.
	Rejuvenate(kind string) error
	// Compromise fault-injects one version (demos and tests only).
	Compromise(version int) error
	// Close shuts the shard down.
	Close()
}

// LocalShard adapts an in-process *serve.Server to ShardControl. Health
// verdicts are pushed: the shard subscribes to its server's health engine and
// caches the latest "overall" level in an atomic, so the router's per-attempt
// Level() check costs one load — no lock shared with the engine's observe
// path. Without a health engine the level pins at Healthy and routing relies
// on queue-full shedding alone.
type LocalShard struct {
	srv   *serve.Server
	level atomic.Int32
}

// NewLocalShard wraps srv. The server must have a non-empty ShardLabel (the
// ring identity) — enforced here rather than discovered as a hash collision
// later.
func NewLocalShard(srv *serve.Server) (*LocalShard, error) {
	if srv.ShardLabel() == "" {
		return nil, errEmptyShardLabel
	}
	sh := &LocalShard{srv: srv}
	if eng := srv.Health(); eng != nil {
		sh.level.Store(int32(eng.OverallLevel()))
		eng.Subscribe(func(tr health.Transition) {
			if tr.Component == "overall" {
				sh.level.Store(int32(tr.To))
			}
		})
	}
	return sh, nil
}

// Server exposes the wrapped server (demo wiring needs the raw handle).
func (s *LocalShard) Server() *serve.Server { return s.srv }

// ID implements ShardClient.
func (s *LocalShard) ID() string { return s.srv.ShardLabel() }

// Classify implements ShardClient.
func (s *LocalShard) Classify(img *tensor.Tensor) (serve.Result, error) {
	return s.srv.Classify(img)
}

// Level implements ShardClient.
func (s *LocalShard) Level() health.Level { return health.Level(s.level.Load()) }

// Draining implements ShardClient.
func (s *LocalShard) Draining() bool { return s.srv.Draining() }

// QueueDepth implements ShardClient.
func (s *LocalShard) QueueDepth() int { return s.srv.QueueDepth() }

// QueueCapacity implements ShardClient.
func (s *LocalShard) QueueCapacity() int { return s.srv.QueueCapacity() }

// Workers implements ShardControl.
func (s *LocalShard) Workers() int { return s.srv.Workers() }

// Resize implements ShardControl.
func (s *LocalShard) Resize(perVersion int) error { return s.srv.ResizeWorkers(perVersion) }

// SetDraining implements ShardControl.
func (s *LocalShard) SetDraining(v bool) { s.srv.SetDraining(v) }

// Rejuvenate implements ShardControl.
func (s *LocalShard) Rejuvenate(kind string) error { return s.srv.RejuvenateAll(kind) }

// Compromise implements ShardControl.
func (s *LocalShard) Compromise(version int) error { return s.srv.Compromise(version) }

// Close implements ShardControl.
func (s *LocalShard) Close() { s.srv.Close() }
