package gateway

import (
	"testing"
	"time"
)

func scaleCfg() AutoscalerConfig {
	cfg := AutoscalerConfig{
		MinWorkers: 1, MaxWorkers: 4,
		QueueHigh: 0.5, QueueLow: 0.05,
		P99Target: 250 * time.Millisecond,
		UpStreak:  2, DownStreak: 8,
		MinShards: 1, MaxShards: 8,
		SpawnShard: func(string) (ShardControl, error) { return nil, nil },
	}
	return cfg.withDefaults()
}

func sig(p99 time.Duration, shards ...shardSignal) scaleSignals {
	return scaleSignals{Shards: shards, P99: p99}
}

func TestDecideGrowsHottestShard(t *testing.T) {
	act := decide(scaleCfg(), sig(10*time.Millisecond,
		shardSignal{ID: "a", QueueFrac: 0.2, Workers: 2},
		shardSignal{ID: "b", QueueFrac: 0.9, Workers: 2},
	), 2, 0)
	if act.Kind != "grow" || act.Shard != "b" || act.Workers != 3 {
		t.Fatalf("want grow b->3, got %+v", act)
	}
}

func TestDecideLatencyAloneTriggersGrowth(t *testing.T) {
	act := decide(scaleCfg(), sig(time.Second,
		shardSignal{ID: "a", QueueFrac: 0.0, Workers: 1},
	), 2, 0)
	if act.Kind != "grow" || act.Shard != "a" {
		t.Fatalf("p99 breach should grow, got %+v", act)
	}
}

func TestDecideRespectsUpStreak(t *testing.T) {
	act := decide(scaleCfg(), sig(time.Second,
		shardSignal{ID: "a", QueueFrac: 0.9, Workers: 2},
	), 1, 0)
	if act.Kind != "none" {
		t.Fatalf("one hot sample should not scale, got %+v", act)
	}
}

func TestDecideSpawnsWhenWorkersMaxed(t *testing.T) {
	cfg := scaleCfg()
	act := decide(cfg, sig(time.Second,
		shardSignal{ID: "a", QueueFrac: 0.9, Workers: cfg.MaxWorkers},
	), 2, 0)
	if act.Kind != "spawn" {
		t.Fatalf("maxed workers under pressure should spawn, got %+v", act)
	}
	// Without a spawner, worker-maxed pressure has no remaining lever.
	cfg.SpawnShard = nil
	act = decide(cfg, sig(time.Second,
		shardSignal{ID: "a", QueueFrac: 0.9, Workers: cfg.MaxWorkers},
	), 2, 0)
	if act.Kind != "none" {
		t.Fatalf("no spawner: want none, got %+v", act)
	}
}

func TestDecideShrinksColdestShard(t *testing.T) {
	act := decide(scaleCfg(), sig(time.Millisecond,
		shardSignal{ID: "a", QueueFrac: 0.01, Workers: 3},
		shardSignal{ID: "b", QueueFrac: 0.02, Workers: 2},
	), 0, 8)
	if act.Kind != "shrink" || act.Shard != "a" || act.Workers != 2 {
		t.Fatalf("want shrink a->2, got %+v", act)
	}
}

func TestDecideRetiresAtMinWorkers(t *testing.T) {
	cfg := scaleCfg()
	act := decide(cfg, sig(time.Millisecond,
		shardSignal{ID: "a", QueueFrac: 0.0, Workers: cfg.MinWorkers},
		shardSignal{ID: "b", QueueFrac: 0.01, Workers: cfg.MinWorkers},
	), 0, 8)
	if act.Kind != "retire" || act.Shard != "a" {
		t.Fatalf("want retire a, got %+v", act)
	}
	// Never below MinShards.
	act = decide(cfg, sig(time.Millisecond,
		shardSignal{ID: "a", QueueFrac: 0.0, Workers: cfg.MinWorkers},
	), 0, 8)
	if act.Kind != "none" {
		t.Fatalf("MinShards floor violated: %+v", act)
	}
}

func TestDecideIgnoresDrainingShards(t *testing.T) {
	// The draining shard's hot queue must not trigger growth — it is on the
	// way out, and resizing a retiring shard wastes the work.
	act := decide(scaleCfg(), sig(time.Millisecond,
		shardSignal{ID: "a", QueueFrac: 0.95, Workers: 2, Draining: true},
		shardSignal{ID: "b", QueueFrac: 0.01, Workers: 2},
	), 2, 0)
	if act.Kind == "grow" && act.Shard == "a" {
		t.Fatalf("grew a draining shard: %+v", act)
	}
	// Only draining shards left: nothing to do.
	act = decide(scaleCfg(), sig(time.Second,
		shardSignal{ID: "a", QueueFrac: 0.9, Workers: 2, Draining: true},
	), 5, 0)
	if act.Kind != "none" {
		t.Fatalf("want none with only draining shards, got %+v", act)
	}
}

func TestDecideSteadyStateDoesNothing(t *testing.T) {
	// Mid-band occupancy: neither hot nor cold regardless of streaks.
	for _, streaks := range [][2]int{{5, 0}, {0, 20}} {
		act := decide(scaleCfg(), sig(100*time.Millisecond,
			shardSignal{ID: "a", QueueFrac: 0.2, Workers: 2},
		), streaks[0], streaks[1])
		if act.Kind != "none" {
			t.Fatalf("steady state acted: %+v", act)
		}
	}
}

// TestSignalsPrefersP99Source checks that a configured latency source (the
// tsdb recording-rule feed) overrides the gateway's own latency window, and
// that a dead source (<=0 readings) falls back to it.
func TestSignalsPrefersP99Source(t *testing.T) {
	gw := New(Config{}, nil)
	defer gw.Close()
	if err := gw.AddShard(newFakeShard("a")); err != nil {
		t.Fatal(err)
	}
	external := 400 * time.Millisecond
	a := &autoscaler{gw: gw, cfg: AutoscalerConfig{
		P99Source: func() time.Duration { return external },
	}.withDefaults()}
	if got := a.signals().P99; got != 400*time.Millisecond {
		t.Fatalf("P99 = %v, want the external source's 400ms", got)
	}
	external = 0 // source goes quiet: fall back to the local window
	if got := a.signals().P99; got != 0 {
		t.Fatalf("P99 with quiet source and empty window = %v, want 0", got)
	}
}
