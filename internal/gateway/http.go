package gateway

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"mvml/internal/health"
	"mvml/internal/serve"
)

// ShardStatus is one shard's row in the gateway /healthz body.
type ShardStatus struct {
	ID         string       `json:"id"`
	Level      health.Level `json:"level"`
	Draining   bool         `json:"draining"`
	QueueDepth int          `json:"queue_depth"`
	QueueCap   int          `json:"queue_capacity"`
	Workers    int          `json:"workers,omitempty"`
}

// statusResponse is the JSON body of the gateway's GET /healthz.
type statusResponse struct {
	Status   string        `json:"status"`
	Inflight int           `json:"inflight"`
	Shards   []ShardStatus `json:"shards"`
}

// gwAdminRequest is the JSON body of the gateway /admin endpoints.
type gwAdminRequest struct {
	Shard    string `json:"shard"`
	Version  int    `json:"version,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Draining *bool  `json:"draining,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the gateway's HTTP API — the same data plane a single
// server exposes, plus shard-addressed admin:
//
//	POST /v1/classify      — classify (routed; 429 on gateway shed)
//	GET  /healthz          — per-shard level, drain state and queue depth
//	POST /admin/rejuvenate — rejuvenate every version of one shard
//	POST /admin/compromise — fault-inject one version of one shard
//	POST /admin/drain      — set/clear one shard's drain flag
//	POST /admin/resize     — set one shard's per-version worker count
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", g.handleClassify)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("POST /admin/rejuvenate", g.handleAdmin(func(sc ShardControl, req *gwAdminRequest) error {
		kind := req.Kind
		if kind == "" {
			kind = serve.RejuvManual
		}
		return sc.Rejuvenate(kind)
	}))
	mux.HandleFunc("POST /admin/compromise", g.handleAdmin(func(sc ShardControl, req *gwAdminRequest) error {
		return sc.Compromise(req.Version)
	}))
	mux.HandleFunc("POST /admin/drain", g.handleAdmin(func(sc ShardControl, req *gwAdminRequest) error {
		v := true
		if req.Draining != nil {
			v = *req.Draining
		}
		sc.SetDraining(v)
		return nil
	}))
	mux.HandleFunc("POST /admin/resize", g.handleAdmin(func(sc ShardControl, req *gwAdminRequest) error {
		return sc.Resize(req.Workers)
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (g *Gateway) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req serve.ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	img, err := req.Tensor()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	start := time.Now()
	res, info, err := g.Classify(RouteKey(&req), r.Header.Get("X-Client-ID"), img)
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrNoShards), errors.Is(err, ErrExhausted), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		w.Header().Set("X-Shard", info.Shard)
		writeJSON(w, http.StatusOK, serve.ClassifyResponse{
			Class:     res.Class,
			Degraded:  res.Degraded,
			Reason:    res.Reason,
			Agreeing:  res.Agreeing,
			Proposals: res.Proposals,
			LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := statusResponse{Status: "ok", Inflight: g.Inflight()}
	worst := health.Healthy
	for _, id := range g.Shards() {
		sc := g.Shard(id)
		if sc == nil {
			continue
		}
		st := ShardStatus{
			ID:         sc.ID(),
			Level:      sc.Level(),
			Draining:   sc.Draining(),
			QueueDepth: sc.QueueDepth(),
			QueueCap:   sc.QueueCapacity(),
		}
		if c, ok := sc.(ShardControl); ok {
			st.Workers = c.Workers()
		}
		if st.Level > worst {
			worst = st.Level
		}
		resp.Shards = append(resp.Shards, st)
	}
	resp.Status = worst.String()
	writeJSON(w, http.StatusOK, resp)
}

// handleAdmin wraps a shard-addressed admin operation: resolve the shard,
// require control, run the op.
func (g *Gateway) handleAdmin(op func(sc ShardControl, req *gwAdminRequest) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req gwAdminRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
			return
		}
		sc := g.Shard(req.Shard)
		if sc == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown shard " + req.Shard})
			return
		}
		ctrl, ok := sc.(ShardControl)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "shard " + req.Shard + " is not controllable"})
			return
		}
		if err := op(ctrl, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}
