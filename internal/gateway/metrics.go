package gateway

import "mvml/internal/obs"

// gwMetrics bundles the gateway's telemetry handles. As in serve, a nil
// runtime hands out nil no-op handles, so the routing hot path never branches
// on instrumentation.
type gwMetrics struct {
	routed    *obs.Counter   // requests answered by their primary shard
	rerouted  *obs.Counter   // plans that skipped an unhealthy/draining owner
	failovers *obs.Counter   // attempts redirected to a ring successor
	retries   *obs.Counter   // retry attempts spent from client budgets
	shed      *obs.Counter   // requests 429'd at the gateway front door
	noBudget  *obs.Counter   // failovers refused because the budget was dry
	failed    *obs.Counter   // requests that exhausted every candidate shard
	inflight  *obs.Gauge     // requests currently inside the gateway
	shards    *obs.Gauge     // shards on the ring
	attempts  *obs.Histogram // attempts per answered request

	reg   *obs.Registry
	spans *obs.SpanSink
}

func newGwMetrics(rt *obs.Runtime) *gwMetrics {
	m := &gwMetrics{}
	if rt != nil {
		m.reg = rt.Metrics()
		m.spans = rt.Spans()
	}
	r := m.reg
	r.Help("mv_gateway_routed_total", "Requests answered by their primary (hash-owner) shard.")
	r.Help("mv_gateway_rerouted_total", "Requests whose plan skipped an unhealthy or draining hash owner.")
	r.Help("mv_gateway_failovers_total", "Attempts redirected from an unhealthy or draining shard to a ring successor.")
	r.Help("mv_gateway_retries_total", "Retry attempts spent from per-client retry budgets.")
	r.Help("mv_gateway_shed_total", "Requests rejected at the gateway with 429 backpressure.")
	r.Help("mv_gateway_retry_budget_exhausted_total", "Failovers refused because the client's retry budget was empty.")
	r.Help("mv_gateway_failed_total", "Requests that exhausted every candidate shard.")
	r.Help("mv_gateway_inflight", "Requests currently being routed by the gateway.")
	r.Help("mv_gateway_shards", "Shards currently on the hash ring.")
	r.Help("mv_gateway_attempts", "Shard attempts per answered request.")
	r.Help("mv_gateway_workers", "Per-version worker-pool size of one shard (autoscaler-controlled).")

	m.routed = r.Counter("mv_gateway_routed_total")
	m.rerouted = r.Counter("mv_gateway_rerouted_total")
	m.failovers = r.Counter("mv_gateway_failovers_total")
	m.retries = r.Counter("mv_gateway_retries_total")
	m.shed = r.Counter("mv_gateway_shed_total")
	m.noBudget = r.Counter("mv_gateway_retry_budget_exhausted_total")
	m.failed = r.Counter("mv_gateway_failed_total")
	m.inflight = r.Gauge("mv_gateway_inflight")
	m.shards = r.Gauge("mv_gateway_shards")
	m.attempts = r.Histogram("mv_gateway_attempts", obs.LinearBuckets(1, 1, 8))
	return m
}

// workers resolves the per-shard worker-count gauge.
func (m *gwMetrics) workers(shard string) *obs.Gauge {
	return m.reg.Gauge("mv_gateway_workers", "shard", shard)
}
