package perception

import (
	"testing"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/nn"
	"mvml/internal/xrand"
)

func TestRasterizeGeometry(t *testing.T) {
	// An object 24 m straight ahead of an ego heading along +X lands in
	// the middle column, centre row of the raster.
	scene := drivesim.Scene{
		Ego:     drivesim.VehicleState{Pos: drivesim.Vec2{X: 10, Y: 5}},
		Objects: []drivesim.Object{{ID: 1, Pos: drivesim.Vec2{X: 34, Y: 5}}},
	}
	img := Rasterize(scene, 0, nil)
	if img.Shape[1] != nn.YOLiteInputSize {
		t.Fatalf("raster shape %v", img.Shape)
	}
	// ahead = 24 of 48 -> px = 8; lateral = 0 -> py = 8.
	centre := img.At(0, 8, 8)
	if centre < 0.5 {
		t.Fatalf("expected a bright blob at (8,8), got %v", centre)
	}
	// Far corners stay dark.
	if img.At(0, 0, 0) != 0 || img.At(0, 15, 15) != 0 {
		t.Fatal("unexpected intensity far from the object")
	}
}

func TestRasterizeRespectsHeading(t *testing.T) {
	// Same world object, ego rotated 90°: the object moves from "ahead"
	// to outside the forward field of view.
	obj := drivesim.Object{ID: 1, Pos: drivesim.Vec2{X: 20, Y: 0}}
	ahead := Rasterize(drivesim.Scene{
		Ego: drivesim.VehicleState{}, Objects: []drivesim.Object{obj},
	}, 0, nil)
	rotated := Rasterize(drivesim.Scene{
		Ego: drivesim.VehicleState{Heading: 3.14159}, Objects: []drivesim.Object{obj},
	}, 0, nil)
	var sumAhead, sumRotated float32
	for i := range ahead.Data {
		sumAhead += ahead.Data[i]
		sumRotated += rotated.Data[i]
	}
	if sumAhead == 0 {
		t.Fatal("object ahead not rasterised")
	}
	if sumRotated != 0 {
		t.Fatal("object behind the rotated ego should be outside the raster")
	}
}

func TestYOLiteLossAndDecode(t *testing.T) {
	// A perfect prediction has near-zero loss; decoding recovers the cell.
	target := rasterTarget(drivesim.Scene{
		Ego:     drivesim.VehicleState{},
		Objects: []drivesim.Object{{ID: 1, Pos: drivesim.Vec2{X: 24, Y: 0}}},
	})
	pred := target.Clone()
	cells := nn.YOLiteGrid * nn.YOLiteGrid
	for c := 0; c < cells; c++ {
		if target.Data[c] > 0.5 {
			pred.Data[c] = 12 // large positive logit
		} else {
			pred.Data[c] = -12
		}
	}
	loss, grad, err := nn.YOLiteLoss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("perfect prediction has loss %v", loss)
	}
	if grad.Len() != pred.Len() {
		t.Fatal("gradient shape mismatch")
	}
	dets, err := nn.DecodeYOLite(pred, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("decoded %d detections, want 1", len(dets))
	}
	// Shape errors are reported.
	bad := pred.Clone()
	bad.Data = bad.Data[:3]
	bad.Shape = []int{3}
	if _, _, err := nn.YOLiteLoss(bad, target); err == nil {
		t.Fatal("expected shape error from YOLiteLoss")
	}
	if _, err := nn.DecodeYOLite(bad, 0.5); err == nil {
		t.Fatal("expected shape error from DecodeYOLite")
	}
}

func TestTrainedYOLiteDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("NN training skipped in -short mode")
	}
	rng := xrand.New(5)
	net, err := TrainYOLite(700, rng.Split("train", 0))
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewNNDetectorVersion("yolite-1", net, rng.Split("v", 0))
	if err != nil {
		t.Fatal(err)
	}
	eval := rng.Split("eval", 0)
	tp, fn, fp := 0, 0, 0
	for i := 0; i < 300; i++ {
		scene := randomScene(1+eval.Intn(2), eval)
		dets, err := v.Infer(scene)
		if err != nil {
			t.Fatal(err)
		}
		matched := make([]bool, len(dets))
		for _, obj := range scene.Objects {
			found := false
			for di, d := range dets {
				if !matched[di] && d.Pos.Dist(obj.Pos) < 5 {
					matched[di] = true
					found = true
					break
				}
			}
			if found {
				tp++
			} else {
				fn++
			}
		}
		for _, m := range matched {
			if !m {
				fp++
			}
		}
	}
	recall := float64(tp) / float64(tp+fn)
	precision := float64(tp) / float64(tp+fp)
	if recall < 0.85 {
		t.Fatalf("trained YOLite recall %.3f too low (tp=%d fn=%d)", recall, tp, fn)
	}
	if precision < 0.85 {
		t.Fatalf("trained YOLite precision %.3f too low (tp=%d fp=%d)", precision, tp, fp)
	}

	// Compromise with the paper's (-100, 300) fault degrades detection;
	// Restore (rejuvenation) recovers it exactly.
	pristineOut, err := v.Infer(randomScene(2, xrand.New(77)))
	if err != nil {
		t.Fatal(err)
	}
	degradedWorse := false
	for try := 0; try < 20 && !degradedWorse; try++ {
		if err := v.Compromise(); err != nil {
			t.Fatal(err)
		}
		out, err := v.Infer(randomScene(2, xrand.New(77)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(pristineOut) {
			degradedWorse = true
		}
	}
	if !degradedWorse {
		t.Log("20 injections never changed the output set; fault may be masked (acceptable but unusual)")
	}
	if err := v.Restore(); err != nil {
		t.Fatal(err)
	}
	restored, err := v.Infer(randomScene(2, xrand.New(77)))
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(pristineOut) {
		t.Fatal("restore did not recover pristine behaviour")
	}
}

// TestNNPipelineDrivesSafely closes the loop: three independently trained
// YOLite versions behind the detection voter drive a route without faults
// and must not collide.
func TestNNPipelineDrivesSafely(t *testing.T) {
	if testing.Short() {
		t.Skip("NN training skipped in -short mode")
	}
	rng := xrand.New(11)
	var versions []core.Version[drivesim.Scene, []drivesim.Detection]
	for i := 0; i < 3; i++ {
		net, err := TrainYOLite(700, rng.Split("train", uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewNNDetectorVersion(
			[]string{"yolite-s", "yolite-m", "yolite-l"}[i], net, rng.Split("v", uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}
	sys, err := core.NewSystem[drivesim.Scene, []drivesim.Detection](
		versions, NewDetectionVoter(4.5), core.Config{DisableFaults: true}, rng.Split("sys", 0))
	if err != nil {
		t.Fatal(err)
	}
	pipe := &Pipeline{sys: sys}
	res, err := drivesim.Run(drivesim.Config{RouteNumber: 1, CruiseSpeed: 10}, pipe, rng.Split("sim", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided {
		t.Fatalf("NN-in-the-loop pipeline collided at frame %d", res.FirstCollisionFrame)
	}
	if res.SkipRatio() > 0.3 {
		t.Fatalf("NN pipeline skip ratio %.3f too high", res.SkipRatio())
	}
}

func TestNNDetectorValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewNNDetectorVersion("x", nil, rng); err == nil {
		t.Fatal("expected error for nil network")
	}
	net := nn.NewYOLite(rng)
	if _, err := NewNNDetectorVersion("x", net, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := TrainYOLite(0, rng); err == nil {
		t.Fatal("expected error for zero steps")
	}
}
