package perception

import (
	"fmt"
	"math"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/faultinject"
	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// The NN-in-the-loop detector: instead of the statistical error model of
// DetectorVersion, NNDetectorVersion runs a real YOLite network over an
// ego-centric occupancy raster. Compromise injects a PyTorchFI-style weight
// fault (the paper uses random_weight_inj with range (-100, 300) on its
// YOLOv5 variants) and rejuvenation reloads the pristine weights — the same
// mechanics as the paper's CARLA deployment, at raster rather than camera
// resolution.

// Raster geometry: the YOLite input covers RasterAhead metres in front of
// the ego and ±RasterHalfWidth metres laterally.
const (
	RasterAhead     = 48.0
	RasterHalfWidth = 24.0
)

// Rasterize renders the scene's ground-truth objects into a 1-channel
// ego-centric occupancy raster for the YOLite detector, with additive sensor
// noise drawn from rng (pass nil for a clean raster).
func Rasterize(scene drivesim.Scene, noise float64, rng *xrand.Rand) *tensor.Tensor {
	img := tensor.New(1, nn.YOLiteInputSize, nn.YOLiteInputSize)
	sin, cos := math.Sincos(scene.Ego.Heading)
	for _, obj := range scene.Objects {
		rel := obj.Pos.Sub(scene.Ego.Pos)
		// Rotate into the ego frame: x ahead, y left.
		ahead := rel.X*cos + rel.Y*sin
		lateral := -rel.X*sin + rel.Y*cos
		if ahead < 0 || ahead >= RasterAhead || lateral < -RasterHalfWidth || lateral >= RasterHalfWidth {
			continue
		}
		px := ahead / RasterAhead * nn.YOLiteInputSize
		py := (lateral + RasterHalfWidth) / (2 * RasterHalfWidth) * nn.YOLiteInputSize
		// Paint a small soft blob so sub-cell position is recoverable.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				ix, iy := int(px)+dx, int(py)+dy
				if ix < 0 || ix >= nn.YOLiteInputSize || iy < 0 || iy >= nn.YOLiteInputSize {
					continue
				}
				d2 := (float64(ix)+0.5-px)*(float64(ix)+0.5-px) + (float64(iy)+0.5-py)*(float64(iy)+0.5-py)
				v := float32(math.Exp(-d2 / 0.8))
				idx := iy*nn.YOLiteInputSize + ix
				if v > img.Data[idx] {
					img.Data[idx] = v
				}
			}
		}
	}
	if rng != nil && noise > 0 {
		for i := range img.Data {
			img.Data[i] += float32(rng.Normal(0, noise))
			if img.Data[i] < 0 {
				img.Data[i] = 0
			}
		}
	}
	return img
}

// rasterTarget builds the YOLite grid target for a scene.
func rasterTarget(scene drivesim.Scene) *tensor.Tensor {
	target := tensor.New(nn.YOLiteChannels, nn.YOLiteGrid, nn.YOLiteGrid)
	sin, cos := math.Sincos(scene.Ego.Heading)
	cellPx := float64(nn.YOLiteInputSize) / nn.YOLiteGrid
	cells := nn.YOLiteGrid * nn.YOLiteGrid
	for _, obj := range scene.Objects {
		rel := obj.Pos.Sub(scene.Ego.Pos)
		ahead := rel.X*cos + rel.Y*sin
		lateral := -rel.X*sin + rel.Y*cos
		if ahead < 0 || ahead >= RasterAhead || lateral < -RasterHalfWidth || lateral >= RasterHalfWidth {
			continue
		}
		px := ahead / RasterAhead * nn.YOLiteInputSize
		py := (lateral + RasterHalfWidth) / (2 * RasterHalfWidth) * nn.YOLiteInputSize
		cx := int(px / cellPx)
		cy := int(py / cellPx)
		c := cy*nn.YOLiteGrid + cx
		target.Data[c] = 1
		target.Data[cells+c] = float32(px/cellPx - float64(cx))
		target.Data[2*cells+c] = float32(py/cellPx - float64(cy))
	}
	return target
}

// randomScene places n objects uniformly in the raster's field of view
// around a stationary ego at the origin.
func randomScene(n int, rng *xrand.Rand) drivesim.Scene {
	scene := drivesim.Scene{Ego: drivesim.VehicleState{}}
	for i := 0; i < n; i++ {
		scene.Objects = append(scene.Objects, drivesim.Object{
			ID:  i + 1,
			Pos: drivesim.Vec2{X: rng.Uniform(2, RasterAhead-2), Y: rng.Uniform(-RasterHalfWidth+2, RasterHalfWidth-2)},
		})
	}
	return scene
}

// TrainYOLite trains a fresh YOLite detector on procedurally generated
// scenes (self-supervised from the rasteriser) and returns the network.
func TrainYOLite(steps int, rng *xrand.Rand) (*nn.Network, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("perception: non-positive training steps %d", steps)
	}
	net := nn.NewYOLite(rng.Split("init", 0))
	opt := nn.NewSGD(0.01, 0.9)
	data := rng.Split("data", 0)
	const batchSize = 16
	for step := 0; step < steps; step++ {
		if step == steps/2 {
			opt.LR *= 0.3
		}
		batch := make([]nn.YOLiteSample, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			scene := randomScene(data.Intn(4), data)
			batch = append(batch, nn.YOLiteSample{
				Raster: Rasterize(scene, 0.02, data),
				Target: rasterTarget(scene),
			})
		}
		if _, err := nn.TrainYOLiteBatch(net, batch, opt); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// NNDetectorVersion runs a trained YOLite network as one perception version.
type NNDetectorVersion struct {
	name      string
	net       *nn.Network
	pristine  [][]float32
	threshold float64
	// Injection parameters for Compromise (the paper's YOLO experiment
	// uses random_weight_inj with range (-100, 300)).
	injectLayer          int
	injectMin, injectMax float64
	injectRng            *xrand.Rand
	noise                float64
	noiseRng             *xrand.Rand
}

var _ core.Version[drivesim.Scene, []drivesim.Detection] = (*NNDetectorVersion)(nil)

// NewNNDetectorVersion wraps a trained YOLite network. Each version should
// receive its own independently trained network (that is the version
// diversity) and its own rng streams.
func NewNNDetectorVersion(name string, net *nn.Network, rng *xrand.Rand) (*NNDetectorVersion, error) {
	if net == nil {
		return nil, fmt.Errorf("perception: nil network")
	}
	if rng == nil {
		return nil, fmt.Errorf("perception: nil rng")
	}
	return &NNDetectorVersion{
		name:        name,
		net:         net,
		pristine:    net.CloneWeights(),
		threshold:   0.5,
		injectLayer: 1,
		injectMin:   -100,
		injectMax:   300,
		injectRng:   rng.Split("inject", 0),
		noise:       0.02,
		noiseRng:    rng.Split("noise", 0),
	}, nil
}

// Name implements core.Version.
func (v *NNDetectorVersion) Name() string { return v.name }

// Infer implements core.Version: rasterise, run the network, decode grid
// detections back to world coordinates.
func (v *NNDetectorVersion) Infer(scene drivesim.Scene) ([]drivesim.Detection, error) {
	raster := Rasterize(scene, v.noise, v.noiseRng)
	out, err := v.net.Forward(raster, false)
	if err != nil {
		return nil, fmt.Errorf("perception: YOLite forward: %w", err)
	}
	grid, err := nn.DecodeYOLite(out, v.threshold)
	if err != nil {
		return nil, err
	}
	sin, cos := math.Sincos(scene.Ego.Heading)
	dets := make([]drivesim.Detection, 0, len(grid))
	for _, g := range grid {
		ahead := g.X / nn.YOLiteInputSize * RasterAhead
		lateral := g.Y/nn.YOLiteInputSize*(2*RasterHalfWidth) - RasterHalfWidth
		dets = append(dets, drivesim.Detection{Pos: drivesim.Vec2{
			X: scene.Ego.Pos.X + ahead*cos - lateral*sin,
			Y: scene.Ego.Pos.Y + ahead*sin + lateral*cos,
		}})
	}
	return dets, nil
}

// Compromise implements core.Version by injecting a large random weight
// fault into the network.
func (v *NNDetectorVersion) Compromise() error {
	_, err := faultinject.RandomWeightInj(v.net, v.injectLayer, v.injectMin, v.injectMax, v.injectRng)
	if err != nil {
		return fmt.Errorf("perception: compromising %s: %w", v.name, err)
	}
	return nil
}

// Restore implements core.Version by reloading the pristine weights.
func (v *NNDetectorVersion) Restore() error {
	return v.net.RestoreWeights(v.pristine)
}
