package perception

import (
	"math"
	"testing"
)

func TestWithPhotometricShift(t *testing.T) {
	base := DefaultDetectorParams()

	if got := base.WithPhotometricShift(0); got != base {
		t.Fatal("zero shift must be the identity")
	}
	if got := base.WithPhotometricShift(math.NaN()); got != base {
		t.Fatal("NaN shift must be treated as zero")
	}

	mid := base.WithPhotometricShift(0.5)
	full := base.WithPhotometricShift(1)
	over := base.WithPhotometricShift(7) // clamped to 1
	if over != full {
		t.Fatal("shift above 1 must clamp to the full-shift parameters")
	}

	// Degradation must be monotone in the shift and stay inside [0, 1]
	// probability bounds / validation.
	if !(base.MissHealthy < mid.MissHealthy && mid.MissHealthy < full.MissHealthy) {
		t.Fatalf("healthy miss not monotone: %v %v %v", base.MissHealthy, mid.MissHealthy, full.MissHealthy)
	}
	if !(base.MissCompromisedFar < mid.MissCompromisedFar && mid.MissCompromisedFar <= full.MissCompromisedFar) {
		t.Fatalf("far miss not monotone: %v %v %v", base.MissCompromisedFar, mid.MissCompromisedFar, full.MissCompromisedFar)
	}
	if !(base.NoiseHealthy < mid.NoiseHealthy && mid.NoiseHealthy < full.NoiseHealthy) {
		t.Fatalf("noise not monotone: %v %v %v", base.NoiseHealthy, mid.NoiseHealthy, full.NoiseHealthy)
	}
	for _, p := range []DetectorParams{mid, full} {
		if err := p.Validate(); err != nil {
			t.Fatalf("shifted params invalid: %v", err)
		}
	}

	// Unrelated knobs must pass through untouched.
	if mid.CommonMode != base.CommonMode || mid.GhostCompromised != base.GhostCompromised ||
		mid.MatchRadius != base.MatchRadius || mid.HazardWindow != base.HazardWindow {
		t.Fatal("photometric shift altered non-photometric parameters")
	}

	// A ceiling already exceeded is left alone rather than pulled down.
	high := base
	high.MissCompromisedFar = 0.999
	if got := high.WithPhotometricShift(1).MissCompromisedFar; got != 0.999 {
		t.Fatalf("shift pulled an above-ceiling miss down to %v", got)
	}
}
