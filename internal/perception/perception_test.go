package perception

import (
	"math"
	"testing"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/xrand"
)

func scene(frame int, t float64, objects ...drivesim.Object) drivesim.Scene {
	return drivesim.Scene{
		Frame:   frame,
		Time:    t,
		Ego:     drivesim.VehicleState{Pos: drivesim.Vec2{X: 0, Y: 0}},
		Objects: objects,
	}
}

func obj(id int, x, y float64) drivesim.Object {
	return drivesim.Object{ID: id, Pos: drivesim.Vec2{X: x, Y: y}}
}

func det(x, y float64) drivesim.Detection {
	return drivesim.Detection{Pos: drivesim.Vec2{X: x, Y: y}}
}

func TestDetectorParamsValidate(t *testing.T) {
	if err := DefaultDetectorParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultDetectorParams()
	bad.MissHealthy = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for miss > 1")
	}
	bad = DefaultDetectorParams()
	bad.HazardWindow = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero window")
	}
	bad = DefaultDetectorParams()
	bad.MatchRadius = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative radius")
	}
	bad = DefaultDetectorParams()
	bad.NoiseCompromisedFar = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative noise")
	}
}

func TestHealthyDetectorSeesNearlyEverything(t *testing.T) {
	v, err := NewDetectorVersion("v1", DefaultDetectorParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 2000
	hits := 0
	for f := 0; f < frames; f++ {
		out, err := v.Infer(scene(f, float64(f)*0.05, obj(1, 10, 0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 1 {
			hits++
		}
	}
	rate := float64(hits) / frames
	if rate < 0.98 {
		t.Fatalf("healthy detection rate %.3f, want ≥ 0.98", rate)
	}
}

func TestCompromisedMissRates(t *testing.T) {
	p := DefaultDetectorParams()
	v, err := NewDetectorVersion("v1", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Compromise(); err != nil {
		t.Fatal(err)
	}
	if !v.Compromised() {
		t.Fatal("Compromise did not flip the flag")
	}
	// Count per-window detection of a near and a far object. A detection
	// belongs to an object if it is within a few sigma of it.
	countDetections := func(objectX float64, windows int) float64 {
		seen := 0
		for w := 0; w < windows; w++ {
			tm := (float64(w) + 0.5) * p.HazardWindow
			frame := int(tm / 0.05)
			out, err := v.Infer(scene(frame, tm, obj(1, objectX, 0)))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range out {
				if d.Pos.Dist(drivesim.Vec2{X: objectX, Y: 0}) < 7 {
					seen++
					break
				}
			}
		}
		return float64(seen) / float64(windows)
	}
	nearRate := countDetections(8, 3000)
	farRate := countDetections(38, 3000)
	if math.Abs(nearRate-(1-p.MissCompromisedNear)) > 0.05 {
		t.Errorf("near detection rate %.3f, want ≈ %.3f", nearRate, 1-p.MissCompromisedNear)
	}
	if farRate > 1-p.MissCompromisedFar+0.08 {
		t.Errorf("far detection rate %.3f, want ≈ %.3f", farRate, 1-p.MissCompromisedFar)
	}
	if nearRate <= farRate {
		t.Fatal("compromised detector should retain more near-range recall")
	}
	// Restore returns to healthy behaviour.
	if err := v.Restore(); err != nil {
		t.Fatal(err)
	}
	if v.Compromised() {
		t.Fatal("Restore did not clear the flag")
	}
}

func TestCompromisedMissesAreCommonMode(t *testing.T) {
	// Custom rates make the correlation statistically visible: at the
	// default ~0.9 miss rate, P(both miss) under independence is already
	// ~0.8, leaving no margin to detect the shared component.
	p := DefaultDetectorParams()
	p.GhostCompromised = 0 // phantoms would contaminate the miss attribution
	p.MissCompromisedFar = 0.5
	p.CommonMode = 0.8
	mk := func(name string) *DetectorVersion {
		v, err := NewDetectorVersion(name, p, 42) // shared seed
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Compromise(); err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := mk("a"), mk("b")
	const windows = 4000
	bothMiss, aMiss, bMiss := 0, 0, 0
	for w := 0; w < windows; w++ {
		tm := (float64(w) + 0.5) * p.HazardWindow
		frame := int(tm / 0.05)
		sc := scene(frame, tm, obj(1, 30, 0)) // far object
		missOf := func(v *DetectorVersion) bool {
			out, err := v.Infer(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range out {
				if d.Pos.Dist(drivesim.Vec2{X: 30, Y: 0}) < 8 {
					return false
				}
			}
			return true
		}
		ma, mb := missOf(a), missOf(b)
		if ma {
			aMiss++
		}
		if mb {
			bMiss++
		}
		if ma && mb {
			bothMiss++
		}
	}
	pa := float64(aMiss) / windows
	pb := float64(bMiss) / windows
	pBoth := float64(bothMiss) / windows
	if pBoth <= pa*pb+0.05 {
		t.Fatalf("far misses look independent: P(a)=%.2f P(b)=%.2f P(both)=%.2f", pa, pb, pBoth)
	}
}

func TestDetectorDeterministic(t *testing.T) {
	v1, err := NewDetectorVersion("v", DefaultDetectorParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewDetectorVersion("v", DefaultDetectorParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sc := scene(13, 0.65, obj(1, 12, 1), obj(2, 30, -2))
	a, err := v1.Infer(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v2.Infer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same-seed versions disagree")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed versions produced different detections")
		}
	}
}

func TestListsAgree(t *testing.T) {
	r := 1.5
	if !listsAgree(nil, nil, r) {
		t.Fatal("two empty lists must agree")
	}
	if listsAgree([]drivesim.Detection{det(0, 0)}, nil, r) {
		t.Fatal("different cardinalities must disagree")
	}
	if !listsAgree(
		[]drivesim.Detection{det(0, 0), det(10, 0)},
		[]drivesim.Detection{det(10, 0.5), det(0.5, 0)}, r) {
		t.Fatal("order-independent matching failed")
	}
	if listsAgree(
		[]drivesim.Detection{det(0, 0)},
		[]drivesim.Detection{det(5, 0)}, r) {
		t.Fatal("far detections must not match")
	}
}

func TestListVoterRules(t *testing.T) {
	v := NewListVoter(1.5)
	mk := func(name string, dets ...drivesim.Detection) core.Proposal[[]drivesim.Detection] {
		return core.Proposal[[]drivesim.Detection]{Module: name, Value: dets}
	}
	// 2-of-3 agreement.
	d := v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b", det(5.3, 0)),
		mk("c", det(20, 20), det(3, 3)),
	})
	if d.Skipped || len(d.Value) != 1 {
		t.Fatalf("expected agreeing pair to win: %+v", d)
	}
	// Full divergence skips.
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b", det(10, 0)),
		mk("c"),
	})
	if !d.Skipped {
		t.Fatalf("expected skip on divergence: %+v", d)
	}
}

func TestDetectionVoterQuorum(t *testing.T) {
	v := NewDetectionVoter(1.5)
	mk := func(name string, dets ...drivesim.Detection) core.Proposal[[]drivesim.Detection] {
		return core.Proposal[[]drivesim.Detection]{Module: name, Value: dets}
	}
	// Object seen by 2 of 3 is confirmed even amid garbage.
	d := v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0), det(30, 12)),
		mk("b", det(5.4, 0.3)),
		mk("c", det(22, -9)),
	})
	if d.Skipped {
		t.Fatalf("expected confirmed object: %+v", d)
	}
	if len(d.Value) != 1 {
		t.Fatalf("confirmed %d objects, want 1 (garbage must not pass)", len(d.Value))
	}
	if d.Value[0].Pos.Dist(drivesim.Vec2{X: 5.2, Y: 0.15}) > 0.5 {
		t.Fatalf("confirmed position %v not a centroid of the pair", d.Value[0].Pos)
	}

	// No quorum, but a majority of empty lists confirms "clear" — the
	// agreeing-blind failure mode.
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b"),
		mk("c"),
	})
	if d.Skipped || len(d.Value) != 0 {
		t.Fatalf("expected wrong-clear majority: %+v", d)
	}

	// No quorum, non-empty disagreement: safe skip.
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b", det(15, 3)),
		mk("c", det(30, -8)),
	})
	if !d.Skipped {
		t.Fatalf("expected skip: %+v", d)
	}

	// R.2: two versions must agree fully.
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b", det(5.2, 0.1)),
	})
	if d.Skipped {
		t.Fatalf("expected 2-version agreement: %+v", d)
	}
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{
		mk("a", det(5, 0)),
		mk("b", det(5, 0), det(9, 0)),
	})
	if !d.Skipped {
		t.Fatalf("expected 2-version divergence skip: %+v", d)
	}

	// R.3: single version trusted.
	d = v.Vote([]core.Proposal[[]drivesim.Detection]{mk("a", det(7, 0))})
	if d.Skipped || len(d.Value) != 1 {
		t.Fatalf("expected single proposal accepted: %+v", d)
	}

	// No proposals.
	if d := v.Vote(nil); !d.Skipped {
		t.Fatal("expected skip with no proposals")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := NewPipeline(0, DefaultDetectorParams(), core.CaseStudyConfig(), 1, rng); err == nil {
		t.Fatal("expected error for 0 versions")
	}
	bad := DefaultDetectorParams()
	bad.MissHealthy = 2
	if _, err := NewPipeline(3, bad, core.CaseStudyConfig(), 1, rng); err == nil {
		t.Fatal("expected error for bad detector params")
	}
	badCfg := core.CaseStudyConfig()
	badCfg.MeanTimeToCompromise = -1
	if _, err := NewPipeline(3, DefaultDetectorParams(), badCfg, 1, rng); err == nil {
		t.Fatal("expected error for bad system config")
	}
}

func TestPipelineFunctionalModules(t *testing.T) {
	pipe, err := NewPipeline(3, DefaultDetectorParams(), core.Config{DisableFaults: true}, 1, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.FunctionalModules(); got != 3 {
		t.Fatalf("FunctionalModules = %d, want 3", got)
	}
	out, err := pipe.Perceive(0.05, scene(1, 0.05, obj(1, 10, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped {
		t.Fatal("healthy pipeline skipped")
	}
	if len(out.Objects) != 1 {
		t.Fatalf("healthy pipeline saw %d objects, want 1", len(out.Objects))
	}
}

// TestTableVIShape is the integration check for the case study: with
// time-triggered rejuvenation the ego completes every route without a
// collision; without any rejuvenation most runs collide at a substantial
// collision-frame rate. This is the paper's RQ1 answer (Table VI shape).
func TestTableVIShape(t *testing.T) {
	root := xrand.New(2025)
	type agg struct {
		collRuns, runs     int
		collFrames, frames int
	}
	results := map[bool]*agg{true: {}, false: {}}
	for _, rej := range []bool{true, false} {
		for route := 1; route <= drivesim.NumRoutes; route++ {
			for run := 0; run < 5; run++ {
				cfg := core.CaseStudyConfig()
				if !rej {
					cfg.RejuvenationInterval = 0
					cfg.DisableReactive = true
				}
				seed := uint64(route*100 + run)
				pipe, err := NewPipeline(3, DefaultDetectorParams(), cfg, seed, root.Split("sys", seed))
				if err != nil {
					t.Fatal(err)
				}
				res, err := drivesim.Run(drivesim.Config{RouteNumber: route, CruiseSpeed: 10},
					pipe, root.Split("sim", seed))
				if err != nil {
					t.Fatal(err)
				}
				a := results[rej]
				a.runs++
				a.frames += res.TotalFrames
				a.collFrames += res.CollisionFrames
				if res.Collided {
					a.collRuns++
				}
			}
		}
	}
	with, without := results[true], results[false]
	if with.collRuns != 0 {
		t.Errorf("with rejuvenation: %d/%d runs collided, want 0 (paper Table VI)", with.collRuns, with.runs)
	}
	if without.collRuns < 20 {
		t.Errorf("without rejuvenation: only %d/%d runs collided, want most (paper: 33/40)",
			without.collRuns, without.runs)
	}
	rate := 100 * float64(without.collFrames) / float64(without.frames)
	if rate < 8 {
		t.Errorf("without rejuvenation: collision rate %.2f%%, want double digits (paper: 33.5%%)", rate)
	}
}

// TestSkipRatioModest verifies the with-rejuvenation system skips only a
// small fraction of frames (the paper reports ≈2%; our voter is somewhat
// stricter).
func TestSkipRatioModest(t *testing.T) {
	root := xrand.New(5)
	pipe, err := NewPipeline(3, DefaultDetectorParams(), core.CaseStudyConfig(), 9, root.Split("sys", 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := drivesim.Run(drivesim.Config{RouteNumber: 1, CruiseSpeed: 10}, pipe, root.Split("sim", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.SkipRatio() > 0.15 {
		t.Fatalf("skip ratio %.3f too high", res.SkipRatio())
	}
}

func BenchmarkPipelinePerceive(b *testing.B) {
	pipe, err := NewPipeline(3, DefaultDetectorParams(), core.Config{DisableFaults: true}, 1, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sc := scene(0, 0, obj(1, 12, 0), obj(2, 30, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Frame = i
		sc.Time = float64(i) * 0.05
		if _, err := pipe.Perceive(sc.Time, sc); err != nil {
			b.Fatal(err)
		}
	}
}
