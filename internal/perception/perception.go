// Package perception implements the multi-version object-detection pipeline
// of the paper's CARLA case study (§VII): three detector versions whose
// error behaviour depends on their health state, a bounding-box voter with
// the safe-skip semantics of rules R.1–R.3, and the glue that exposes the
// whole stack to the driving simulator as a PerceptionSystem.
//
// The detector error model substitutes for a fault-injected YOLOv5: a
// healthy version occasionally misses or mislocalises an object; a
// compromised version (after PyTorchFI-style weight corruption) suffers
// sustained blindness windows and phantom detections. Crucially, a fraction
// of the compromised misses is *common mode* — driven by a shared per-object
// hardness draw — because correlated failures are what defeat majority
// voting and cause the collisions in Table VI.
package perception

import (
	"fmt"
	"math"
	"time"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// DetectorParams configures the per-version detection error model. The
// degradation profile of a compromised version is distance-dependent, as it
// is for a weight-corrupted YOLO: large nearby vehicles are still detected
// most of the time, while mid/far-range recall collapses; localisation noise
// grows with distance; and phantom detections appear. Miss draws are held
// for HazardWindow seconds so that blindness persists on the time scale that
// matters for braking.
type DetectorParams struct {
	// MissHealthy is the per-frame, per-object miss probability of a
	// healthy version.
	MissHealthy float64
	// MissCompromisedNear / MissCompromisedFar are the per-window miss
	// probabilities of a compromised version for objects nearer/farther
	// than NearRange.
	MissCompromisedNear, MissCompromisedFar float64
	// CommonMode is the fraction of far-range compromised misses shared
	// across all compromised versions (the correlated failure component).
	CommonMode float64
	// CommonModeNear is the shared fraction of near-range compromised
	// misses. It is what lets a compromised majority go blind *together*
	// at braking distance — the collision mechanism of Table VI.
	CommonModeNear float64
	// GhostCompromised is the per-window probability that a compromised
	// version hallucinates a phantom object ahead of the ego.
	GhostCompromised float64
	// NoiseHealthy is the healthy position-noise sigma (m);
	// NoiseCompromisedNear/Far apply to a compromised version below and
	// above NearRange.
	NoiseHealthy, NoiseCompromisedNear, NoiseCompromisedFar float64
	// NearRange is the distance (m) below which a compromised version
	// retains most of its recall.
	NearRange float64
	// HazardWindow is the duration (s) of a compromised blindness window.
	HazardWindow float64
	// MatchRadius is the association distance (m) under which two
	// detections count as the same object during voting.
	MatchRadius float64
}

// DefaultDetectorParams returns the calibration used by the Table VI/VII
// experiments.
func DefaultDetectorParams() DetectorParams {
	return DetectorParams{
		MissHealthy:          0.005,
		MissCompromisedNear:  0.52,
		MissCompromisedFar:   0.90,
		CommonMode:           0.70,
		CommonModeNear:       0.60,
		GhostCompromised:     0.60,
		NoiseHealthy:         0.12,
		NoiseCompromisedNear: 0.50,
		NoiseCompromisedFar:  2.0,
		NearRange:            14,
		HazardWindow:         1.2,
		MatchRadius:          1.6,
	}
}

// Validate reports parameter errors.
func (p DetectorParams) Validate() error {
	for name, v := range map[string]float64{
		"MissHealthy": p.MissHealthy, "MissCompromisedNear": p.MissCompromisedNear,
		"MissCompromisedFar": p.MissCompromisedFar,
		"CommonMode":         p.CommonMode, "CommonModeNear": p.CommonModeNear,
		"GhostCompromised": p.GhostCompromised,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("perception: %s = %v outside [0,1]", name, v)
		}
	}
	if p.NoiseHealthy < 0 || p.NoiseCompromisedNear < 0 || p.NoiseCompromisedFar < 0 {
		return fmt.Errorf("perception: negative noise sigma")
	}
	if p.NearRange < 0 {
		return fmt.Errorf("perception: negative NearRange")
	}
	if p.HazardWindow <= 0 {
		return fmt.Errorf("perception: HazardWindow %v must be positive", p.HazardWindow)
	}
	if p.MatchRadius <= 0 {
		return fmt.Errorf("perception: MatchRadius %v must be positive", p.MatchRadius)
	}
	return nil
}

// Photometric-shift degradation ceilings: under a full shift (1.0) the
// healthy miss probability climbs toward photometricMissCeilingHealthy, the
// compromised miss probabilities toward photometricMissCeiling, and every
// localisation sigma grows by up to photometricNoiseGain times.
const (
	photometricMissCeilingHealthy = 0.40
	photometricMissCeiling        = 0.98
	photometricNoiseGain          = 3.0
)

// WithPhotometricShift returns a copy of the parameters degraded by a
// weather-like photometric shift in [0, 1] — the perception-side analogue of
// fog, glare or heavy rain (and of signs.Config.PhotometricShift on the
// classification side). A shift of 0 returns the parameters unchanged; a
// shift of 1 drags every miss probability toward its ceiling and triples the
// localisation noise. Values outside [0, 1] are clamped. Because the shift
// degrades ALL versions through the same parameters, it raises the
// correlated-failure pressure that defeats majority voting — exactly the
// regime the scenario falsifier searches.
func (p DetectorParams) WithPhotometricShift(shift float64) DetectorParams {
	if !(shift > 0) { // also catches NaN
		return p
	}
	if shift > 1 {
		shift = 1
	}
	toward := func(v, ceiling float64) float64 {
		if v >= ceiling {
			return v
		}
		return v + shift*(ceiling-v)
	}
	p.MissHealthy = toward(p.MissHealthy, photometricMissCeilingHealthy)
	p.MissCompromisedNear = toward(p.MissCompromisedNear, photometricMissCeiling)
	p.MissCompromisedFar = toward(p.MissCompromisedFar, photometricMissCeiling)
	gain := 1 + shift*(photometricNoiseGain-1)
	p.NoiseHealthy *= gain
	p.NoiseCompromisedNear *= gain
	p.NoiseCompromisedFar *= gain
	return p
}

// DetectorVersion is one perception version. It implements
// core.Version[drivesim.Scene, []drivesim.Detection].
type DetectorVersion struct {
	name        string
	params      DetectorParams
	seed        uint64
	compromised bool
}

var _ core.Version[drivesim.Scene, []drivesim.Detection] = (*DetectorVersion)(nil)

// NewDetectorVersion builds a named detector version. Versions of the same
// ensemble must share the seed so their common-mode draws coincide.
func NewDetectorVersion(name string, params DetectorParams, seed uint64) (*DetectorVersion, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &DetectorVersion{name: name, params: params, seed: seed}, nil
}

// Name implements core.Version.
func (v *DetectorVersion) Name() string { return v.name }

// Compromise implements core.Version: detection quality degrades to the
// compromised error rates, as a weight-corrupted YOLO would.
func (v *DetectorVersion) Compromise() error {
	v.compromised = true
	return nil
}

// Restore implements core.Version: rejuvenation reloads pristine behaviour.
func (v *DetectorVersion) Restore() error {
	v.compromised = false
	return nil
}

// Compromised reports the current behaviour mode.
func (v *DetectorVersion) Compromised() bool { return v.compromised }

// Infer implements core.Version: it returns the detections for one frame.
// All randomness is a pure function of (seed, version, frame/window,
// object), so re-running a scenario is reproducible.
func (v *DetectorVersion) Infer(scene drivesim.Scene) ([]drivesim.Detection, error) {
	p := v.params
	window := uint64(scene.Time / p.HazardWindow)
	out := make([]drivesim.Detection, 0, len(scene.Objects))
	for _, obj := range scene.Objects {
		key := uint64(obj.ID)*1_000_003 + window
		dist := obj.Pos.Dist(scene.Ego.Pos)
		near := dist <= p.NearRange
		if v.compromised {
			miss := p.MissCompromisedFar
			if near {
				miss = p.MissCompromisedNear
			}
			// Persistent blindness with a common-mode component shared
			// by every compromised version; the shared fraction is
			// larger at far range, where all models face the same hard
			// conditions, and smaller near, where diverse models fail
			// more independently.
			cm := p.CommonMode
			if near {
				cm = p.CommonModeNear
			}
			common := cm * miss
			private := miss
			if common > 0 && common < 1 {
				private = (miss - common) / (1 - common)
			}
			if common > 0 {
				shared := xrand.New(v.seed).Split("hard", key)
				if shared.Float64() < common {
					continue
				}
			}
			priv := xrand.New(v.seed).Split(v.name+"/miss", key)
			if priv.Float64() < private {
				continue
			}
		} else {
			frameKey := uint64(scene.Frame)*1_000_003 + uint64(obj.ID)
			priv := xrand.New(v.seed).Split(v.name+"/hmiss", frameKey)
			if priv.Float64() < p.MissHealthy {
				continue
			}
		}
		sigma := p.NoiseHealthy
		if v.compromised {
			if near {
				sigma = p.NoiseCompromisedNear
			} else {
				sigma = p.NoiseCompromisedFar
			}
		}
		noise := xrand.New(v.seed).Split(v.name+"/pos", uint64(scene.Frame)*1_000_003+uint64(obj.ID))
		out = append(out, drivesim.Detection{Pos: drivesim.Vec2{
			X: obj.Pos.X + noise.Normal(0, sigma),
			Y: obj.Pos.Y + noise.Normal(0, sigma),
		}})
	}
	// Phantom detections of a compromised version: one stable ghost ahead
	// of the ego for the duration of a window.
	if v.compromised && p.GhostCompromised > 0 {
		g := xrand.New(v.seed).Split(v.name+"/ghost", window)
		if g.Float64() < p.GhostCompromised {
			// False boxes land anywhere in the field of view; only a
			// small fraction happens to sit in the ego's lane corridor.
			dist := 8 + 30*g.Float64()
			lat := g.Uniform(-12, 12)
			dir := drivesim.Vec2{X: math.Cos(scene.Ego.Heading), Y: math.Sin(scene.Ego.Heading)}
			perp := drivesim.Vec2{X: -dir.Y, Y: dir.X}
			pos := scene.Ego.Pos.Add(dir.Scale(dist)).Add(perp.Scale(lat))
			out = append(out, drivesim.Detection{Pos: pos})
		}
	}
	return out, nil
}

// NewListVoter returns the list-level majority voter the pipeline uses by
// default: rules R.1–R.3 applied to the versions' detection lists as
// wholes, with two lists "equal/similar" (§IV) when they have the same
// cardinality and every detection matches within matchRadius. A version
// whose corrupted output diverges anywhere therefore cannot contribute to a
// majority at all — so a compromised pair almost always forces a safe skip
// rather than an agreed-wrong output, while two healthy versions agree and
// outvote the garbage. This matches the paper's framing ("the voter
// produces a perception output if at least two models agree on the
// result"). DetectionVoter below is the object-level quorum alternative,
// used by the voting-scheme ablation.
func NewListVoter(matchRadius float64) *core.MajorityVoter[[]drivesim.Detection] {
	return &core.MajorityVoter[[]drivesim.Detection]{
		Eq: func(a, b []drivesim.Detection) bool {
			return listsAgree(a, b, matchRadius)
		},
	}
}

// DetectionVoter applies the paper's rules R.1–R.3 to object-detection
// output at the object level:
//
//   - R.3 — one functional version: its list is trusted.
//   - R.2 — two functional versions: the lists must fully agree (same
//     cardinality, every detection matched within MatchRadius); any
//     divergence is a safe skip.
//   - R.1 — three (or more) versions: every detection cluster supported by
//     at least two versions is confirmed and output. If no cluster reaches
//     the quorum, a majority of empty lists confirms "clear"; otherwise the
//     versions are irreconcilable and the voter safely skips.
//
// Note the failure mode this preserves: two versions that agree on a WRONG
// perception — both blind to the same vehicle, or both reporting the same
// phantom — outvote the correct minority, exactly as in the paper's fault
// model.
type DetectionVoter struct {
	// MatchRadius is the association distance (m).
	MatchRadius float64
}

var _ core.Voter[[]drivesim.Detection] = (*DetectionVoter)(nil)

// NewDetectionVoter returns a DetectionVoter with the given association
// radius.
func NewDetectionVoter(matchRadius float64) *DetectionVoter {
	return &DetectionVoter{MatchRadius: matchRadius}
}

// Vote implements core.Voter.
func (v *DetectionVoter) Vote(proposals []core.Proposal[[]drivesim.Detection]) core.Decision[[]drivesim.Detection] {
	n := len(proposals)
	switch n {
	case 0:
		return core.Decision[[]drivesim.Detection]{Skipped: true, Reason: "no functional modules"}
	case 1:
		return core.Decision[[]drivesim.Detection]{
			Value: proposals[0].Value, Agreeing: 1, Proposals: 1,
		}
	case 2:
		if listsAgree(proposals[0].Value, proposals[1].Value, v.MatchRadius) {
			return core.Decision[[]drivesim.Detection]{
				Value: proposals[0].Value, Agreeing: 2, Proposals: 2,
			}
		}
		return core.Decision[[]drivesim.Detection]{
			Skipped: true, Reason: "2-version divergence", Proposals: 2,
		}
	}

	// R.1 with object-level quorum.
	type cluster struct {
		centroid drivesim.Vec2
		members  int
		versions map[int]bool
	}
	var clusters []*cluster
	emptyLists := 0
	for vi, prop := range proposals {
		if len(prop.Value) == 0 {
			emptyLists++
		}
		for _, det := range prop.Value {
			var best *cluster
			bestDist := v.MatchRadius
			for _, c := range clusters {
				if c.versions[vi] {
					continue // one contribution per version per object
				}
				if d := det.Pos.Dist(c.centroid); d <= bestDist {
					best, bestDist = c, d
				}
			}
			if best == nil {
				clusters = append(clusters, &cluster{
					centroid: det.Pos,
					members:  1,
					versions: map[int]bool{vi: true},
				})
				continue
			}
			// Running centroid update.
			w := float64(best.members)
			best.centroid = drivesim.Vec2{
				X: (best.centroid.X*w + det.Pos.X) / (w + 1),
				Y: (best.centroid.Y*w + det.Pos.Y) / (w + 1),
			}
			best.members++
			best.versions[vi] = true
		}
	}
	const quorum = 2
	var confirmed []drivesim.Detection
	for _, c := range clusters {
		if len(c.versions) >= quorum {
			confirmed = append(confirmed, drivesim.Detection{Pos: c.centroid})
		}
	}
	switch {
	case len(confirmed) > 0:
		return core.Decision[[]drivesim.Detection]{
			Value: confirmed, Agreeing: quorum, Proposals: n,
		}
	case emptyLists >= quorum:
		// A majority reports a clear scene — possibly a common-mode
		// blindness outvoting a correct minority.
		return core.Decision[[]drivesim.Detection]{
			Value: nil, Agreeing: emptyLists, Proposals: n,
		}
	default:
		return core.Decision[[]drivesim.Detection]{
			Skipped: true, Reason: "no object-level quorum", Proposals: n,
		}
	}
}

// listsAgree greedily matches detections between two lists.
func listsAgree(a, b []drivesim.Detection, radius float64) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, da := range a {
		found := false
		for j, db := range b {
			if used[j] {
				continue
			}
			if da.Pos.Dist(db.Pos) <= radius {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Pipeline exposes a multi-version perception system to the driving
// simulator.
type Pipeline struct {
	sys *core.System[drivesim.Scene, []drivesim.Detection]

	// Telemetry handles (nil when uninstrumented; see Instrument).
	perceiveLatency *obs.Histogram
	perceiveRounds  *obs.Counter
	perceiveSkips   *obs.Counter
}

// Pipeline-level metric names.
const (
	// MetricPerceiveLatency is the end-to-end perception latency histogram
	// (all versions plus the voter) in seconds.
	MetricPerceiveLatency = "mvml_perception_perceive_seconds"
	// MetricPerceiveRounds counts Perceive calls.
	MetricPerceiveRounds = "mvml_perception_rounds_total"
	// MetricPerceiveSkips counts Perceive calls that ended in a safe skip.
	MetricPerceiveSkips = "mvml_perception_skips_total"
)

// Instrument attaches telemetry to the pipeline and its underlying
// multi-version system: per-version inference latency histograms, voter and
// rejuvenation counters (via core.System.Instrument), and pipeline-level
// perceive latency/skip series. Either argument may be nil; telemetry never
// consumes xrand draws, so instrumented runs stay decision-identical.
func (p *Pipeline) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	p.sys.Instrument(reg, tracer)
	reg.Help(MetricPerceiveLatency, "End-to-end perception latency: all versions plus the voter.")
	reg.Help(MetricPerceiveRounds, "Perception rounds executed.")
	reg.Help(MetricPerceiveSkips, "Perception rounds that ended in a safe skip.")
	p.perceiveLatency = reg.Histogram(MetricPerceiveLatency, obs.LatencyBuckets())
	p.perceiveRounds = reg.Counter(MetricPerceiveRounds)
	p.perceiveSkips = reg.Counter(MetricPerceiveSkips)
}

// InstrumentObs is Instrument taking a full obs.Runtime: beyond metrics and
// events, the underlying system also emits module_state / rejuvenation /
// divergence spans in simulated seconds and fires the runtime's flight
// recorder around compromises, divergences and rejuvenations
// (see core.System.InstrumentObs). A nil Runtime detaches telemetry.
func (p *Pipeline) InstrumentObs(rt *obs.Runtime) {
	p.Instrument(rt.Metrics(), rt.Tracer())
	p.sys.InstrumentObs(rt)
}

var _ drivesim.PerceptionSystem = (*Pipeline)(nil)

// NewPipeline builds an n-version detection pipeline (n >= 1) with the
// given fault/rejuvenation configuration and the default object-level
// quorum voter.
func NewPipeline(n int, det DetectorParams, sysCfg core.Config, seed uint64, rng *xrand.Rand) (*Pipeline, error) {
	return NewPipelineWithVoter(n, det, sysCfg, NewDetectionVoter(det.MatchRadius), seed, rng)
}

// NewPipelineWithVoter builds a pipeline around a caller-chosen voter —
// used by the voting-scheme ablation (object-level quorum vs. list-level
// majority vs. unanimity).
func NewPipelineWithVoter(n int, det DetectorParams, sysCfg core.Config,
	voter core.Voter[[]drivesim.Detection], seed uint64, rng *xrand.Rand) (*Pipeline, error) {
	if n < 1 {
		return nil, fmt.Errorf("perception: need at least 1 version, got %d", n)
	}
	if voter == nil {
		return nil, fmt.Errorf("perception: nil voter")
	}
	versions := make([]core.Version[drivesim.Scene, []drivesim.Detection], 0, n)
	// The three version names mirror the paper's YOLOv5 variants.
	names := []string{"yolite-s", "yolite-m", "yolite-l"}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("yolite-%d", i+1)
		if i < len(names) {
			name = names[i]
		}
		v, err := NewDetectorVersion(name, det, seed)
		if err != nil {
			return nil, err
		}
		versions = append(versions, v)
	}
	sys, err := core.NewSystem[drivesim.Scene, []drivesim.Detection](
		versions, voter, sysCfg, rng)
	if err != nil {
		return nil, err
	}
	return &Pipeline{sys: sys}, nil
}

// Perceive implements drivesim.PerceptionSystem.
func (p *Pipeline) Perceive(t float64, scene drivesim.Scene) (drivesim.PerceptionResult, error) {
	var start time.Time
	if p.perceiveLatency != nil {
		start = time.Now()
	}
	d, _, err := p.sys.Infer(t, scene)
	if p.perceiveLatency != nil {
		p.perceiveLatency.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return drivesim.PerceptionResult{}, err
	}
	p.perceiveRounds.Inc()
	if d.Skipped {
		p.perceiveSkips.Inc()
	}
	return drivesim.PerceptionResult{Skipped: d.Skipped, Objects: d.Value}, nil
}

// FunctionalModules implements drivesim.PerceptionSystem.
func (p *Pipeline) FunctionalModules() int {
	count := 0
	for _, m := range p.sys.Modules() {
		if m.State().Functional() {
			count++
		}
	}
	return count
}

// NewPipelineFromSystem wraps an externally constructed multi-version
// system (e.g. one whose versions are trained NN detectors) as a
// drivesim.PerceptionSystem.
func NewPipelineFromSystem(sys *core.System[drivesim.Scene, []drivesim.Detection]) *Pipeline {
	return &Pipeline{sys: sys}
}

// RejuvenatingModules implements drivesim.PerceptionSystem.
func (p *Pipeline) RejuvenatingModules() int {
	count := 0
	for _, m := range p.sys.Modules() {
		if m.State() == core.Rejuvenating {
			count++
		}
	}
	return count
}

// System exposes the underlying multi-version system for stats inspection.
func (p *Pipeline) System() *core.System[drivesim.Scene, []drivesim.Detection] {
	return p.sys
}
