package perception

import (
	"testing"

	"mvml/internal/core"
	"mvml/internal/obs"
	"mvml/internal/xrand"
)

func TestPipelineInstrumentRecords(t *testing.T) {
	pipe, err := NewPipeline(3, DefaultDetectorParams(), core.Config{DisableFaults: true}, 1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pipe.Instrument(reg, nil)
	sc := scene(0, 0, obj(1, 12, 0))
	for i := 0; i < 5; i++ {
		if _, err := pipe.Perceive(float64(i)*0.05, sc); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MetricPerceiveRounds).Value(); got != 5 {
		t.Fatalf("perceive rounds %d, want 5", got)
	}
	var latCount uint64
	for _, m := range reg.Snapshot() {
		if m.Name == MetricPerceiveLatency {
			latCount = m.Histogram.Count
		}
	}
	if latCount != 5 {
		t.Fatalf("perceive latency count %d, want 5", latCount)
	}
}

func benchPerceive(b *testing.B, instrument bool) {
	pipe, err := NewPipeline(3, DefaultDetectorParams(), core.Config{DisableFaults: true}, 1, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		pipe.Instrument(obs.NewRegistry(), nil)
	}
	sc := scene(0, 0, obj(1, 12, 0), obj(2, 30, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Frame = i
		sc.Time = float64(i) * 0.05
		if _, err := pipe.Perceive(sc.Time, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// The pair below measures instrumentation overhead: a fixed cost of a few
// timestamp reads per round (no extra allocations), which vanishes against
// real inference workloads; the uninstrumented path pays only nil checks.
func BenchmarkPerceiveUninstrumented(b *testing.B) { benchPerceive(b, false) }
func BenchmarkPerceiveInstrumented(b *testing.B)   { benchPerceive(b, true) }
