// Package signs generates a synthetic 43-class traffic-sign dataset standing
// in for the German Traffic Sign Recognition Benchmark (GTSRB) used by the
// paper. Each class is a deterministic combination of sign shape, colour
// scheme and an interior glyph pattern; every rendered instance is subject to
// shared photometric and geometric nuisance factors (position/scale jitter,
// brightness and contrast shifts, blur, occlusion, pixel noise). Because the
// nuisance factors — not the class geometry — are what make samples hard,
// independently trained models tend to fail on the *same* hard images, which
// reproduces the correlated-error structure (the α dependency factor) that
// the paper measures on GTSRB.
package signs

import (
	"fmt"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// NumClasses is the GTSRB class count.
const NumClasses = 43

// Shape enumerates sign silhouettes.
type Shape int

// Sign silhouettes, assigned per class as class % 5.
const (
	ShapeCircle Shape = iota + 1
	ShapeTriangleUp
	ShapeTriangleDown
	ShapeDiamond
	ShapeOctagon
)

// rgb is a colour in [0,1] per channel.
type rgb struct{ r, g, b float32 }

// Border colour schemes, assigned per class as (class/5) % 3.
var _palettes = []rgb{
	{0.85, 0.10, 0.10}, // red border (prohibition/warning)
	{0.10, 0.20, 0.85}, // blue border (mandatory)
	{0.90, 0.80, 0.15}, // yellow border (priority)
}

// Config controls dataset generation.
type Config struct {
	// TrainPerClass and TestPerClass are instances rendered per class.
	TrainPerClass int
	TestPerClass  int
	// Noise is the standard deviation of additive Gaussian pixel noise.
	Noise float64
	// BlurProb is the probability of applying a 3×3 box blur to a sample.
	BlurProb float64
	// OcclusionProb is the probability of pasting an occluding patch.
	OcclusionProb float64
	// LowContrastProb is the probability of a strong contrast reduction
	// (the main driver of hard, correlated-error samples).
	LowContrastProb float64
	// Jitter is the max positional offset (pixels) of the sign centre.
	Jitter int
	// PhotometricShift in [0, 1] applies a global weather-like degradation
	// on top of the per-sample nuisances: contrast compressed by up to
	// 70% and brightness dropped by up to 0.25 at a full shift. Unlike
	// the per-sample factors it hits EVERY instance, so it shifts the
	// whole dataset into the hard regime where independently trained
	// models fail together. 0 (the default) is a strict no-op — it draws
	// nothing from the rng and touches no pixel — so existing datasets
	// stay byte-identical. The scenario DSL exposes the same knob for the
	// detection pipeline via perception.DetectorParams.WithPhotometricShift.
	PhotometricShift float64
	// Seed determines the entire dataset.
	Seed uint64
}

// DefaultConfig returns the configuration used by the reproduction
// experiments: hard enough that well-trained diverse models land in the
// 0.90–0.96 healthy accuracy band of the paper's Table II.
func DefaultConfig() Config {
	return Config{
		TrainPerClass:   60,
		TestPerClass:    20,
		Noise:           0.10,
		BlurProb:        0.30,
		OcclusionProb:   0.20,
		LowContrastProb: 0.25,
		Jitter:          3,
		Seed:            38, // the paper fixes seed 38 for reproducibility
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TrainPerClass < 0 || c.TestPerClass < 0 {
		return fmt.Errorf("signs: negative per-class counts (%d, %d)", c.TrainPerClass, c.TestPerClass)
	}
	if c.TrainPerClass+c.TestPerClass == 0 {
		return fmt.Errorf("signs: empty dataset")
	}
	// !(p >= 0 && p <= 1) rather than p < 0 || p > 1: the former also
	// rejects NaN, which slides through both directed comparisons.
	for _, p := range []float64{c.BlurProb, c.OcclusionProb, c.LowContrastProb, c.PhotometricShift} {
		if !(p >= 0 && p <= 1) {
			return fmt.Errorf("signs: probability %v outside [0,1]", p)
		}
	}
	if c.Noise < 0 {
		return fmt.Errorf("signs: negative noise %v", c.Noise)
	}
	return nil
}

// Dataset is a generated train/test split.
type Dataset struct {
	Train []nn.Sample
	Test  []nn.Sample
	Cfg   Config
}

// Generate renders the full dataset deterministically from cfg.Seed. Train
// and test instances use disjoint random streams, so the split is a true
// holdout.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	ds := &Dataset{
		Train: make([]nn.Sample, 0, NumClasses*cfg.TrainPerClass),
		Test:  make([]nn.Sample, 0, NumClasses*cfg.TestPerClass),
		Cfg:   cfg,
	}
	for class := 0; class < NumClasses; class++ {
		trainR := root.Split("train", uint64(class))
		for i := 0; i < cfg.TrainPerClass; i++ {
			ds.Train = append(ds.Train, nn.Sample{X: Render(class, trainR, cfg), Label: class})
		}
		testR := root.Split("test", uint64(class))
		for i := 0; i < cfg.TestPerClass; i++ {
			ds.Test = append(ds.Test, nn.Sample{X: Render(class, testR, cfg), Label: class})
		}
	}
	// Shuffle the training set so mini-batches mix classes.
	shuffleR := root.Split("shuffle", 0)
	shuffleR.Shuffle(len(ds.Train), func(i, j int) {
		ds.Train[i], ds.Train[j] = ds.Train[j], ds.Train[i]
	})
	return ds, nil
}

// ClassShape returns the silhouette for a class.
func ClassShape(class int) Shape {
	return Shape(class%5) + ShapeCircle
}

// classPalette returns the border colour for a class.
func classPalette(class int) rgb {
	return _palettes[(class/5)%3]
}

// Render draws one instance of the given class. The result has shape
// (nn.InputChannels, nn.InputSize, nn.InputSize) with values in [0, 1].
func Render(class int, r *xrand.Rand, cfg Config) *tensor.Tensor {
	const size = nn.InputSize
	img := tensor.New(nn.InputChannels, size, size)

	// Background: a random muted colour.
	bg := rgb{
		0.25 + 0.5*r.Float32(),
		0.25 + 0.5*r.Float32(),
		0.25 + 0.5*r.Float32(),
	}
	fillBackground(img, bg)

	// Sign geometry with jitter.
	cx := float64(size)/2 + float64(r.Intn(2*cfg.Jitter+1)-cfg.Jitter)
	cy := float64(size)/2 + float64(r.Intn(2*cfg.Jitter+1)-cfg.Jitter)
	radius := 8.0 + 2.5*r.Float64()

	shape := ClassShape(class)
	border := classPalette(class)
	interior := rgb{0.92, 0.92, 0.92}

	drawSign(img, shape, cx, cy, radius, border, interior)
	drawGlyph(img, class, cx, cy, radius)

	// Shared photometric nuisance factors.
	if r.Bernoulli(cfg.LowContrastProb) {
		applyContrast(img, 0.25+0.25*r.Float64())
	}
	brightness := float32(r.Uniform(-0.15, 0.15))
	for i := range img.Data {
		img.Data[i] += brightness
	}
	if r.Bernoulli(cfg.BlurProb) {
		boxBlur(img)
	}
	if r.Bernoulli(cfg.OcclusionProb) {
		occlude(img, r)
	}
	if cfg.Noise > 0 {
		for i := range img.Data {
			img.Data[i] += float32(r.Normal(0, cfg.Noise))
		}
	}
	// Global photometric shift: deterministic (no rng draws) and strictly
	// gated so a zero shift leaves the sample byte-identical.
	if cfg.PhotometricShift > 0 {
		applyContrast(img, 1-0.7*cfg.PhotometricShift)
		drop := float32(0.25 * cfg.PhotometricShift)
		for i := range img.Data {
			img.Data[i] -= drop
		}
	}
	clamp01(img)
	return img
}

func fillBackground(img *tensor.Tensor, c rgb) {
	size := img.Shape[1]
	plane := size * size
	for i := 0; i < plane; i++ {
		img.Data[i] = c.r
		img.Data[plane+i] = c.g
		img.Data[2*plane+i] = c.b
	}
}

// inShape reports whether the normalised offset (dx, dy) from the sign
// centre, scaled by radius, is inside the silhouette.
func inShape(s Shape, dx, dy float64) bool {
	switch s {
	case ShapeCircle:
		return dx*dx+dy*dy <= 1
	case ShapeTriangleUp:
		// Apex at top: y from -1 (top) to +1 (bottom edge).
		return dy >= -1 && dy <= 1 && absf(dx) <= (dy+1)/2
	case ShapeTriangleDown:
		return dy >= -1 && dy <= 1 && absf(dx) <= (1-dy)/2
	case ShapeDiamond:
		return absf(dx)+absf(dy) <= 1
	case ShapeOctagon:
		return absf(dx) <= 1 && absf(dy) <= 1 && absf(dx)+absf(dy) <= 1.42
	default:
		return false
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func drawSign(img *tensor.Tensor, s Shape, cx, cy, radius float64, border, interior rgb) {
	size := img.Shape[1]
	plane := size * size
	innerScale := 0.65 // interior begins at 65% of the radius
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx := (float64(x) - cx) / radius
			dy := (float64(y) - cy) / radius
			if !inShape(s, dx, dy) {
				continue
			}
			c := border
			if inShape(s, dx/innerScale, dy/innerScale) {
				c = interior
			}
			idx := y*size + x
			img.Data[idx] = c.r
			img.Data[plane+idx] = c.g
			img.Data[2*plane+idx] = c.b
		}
	}
}

// drawGlyph stamps a 2×3 block pattern encoding the class id (6 bits) into
// the sign interior, giving every class a distinct "pictogram".
func drawGlyph(img *tensor.Tensor, class int, cx, cy, radius float64) {
	size := img.Shape[1]
	plane := size * size
	glyph := rgb{0.08, 0.08, 0.08}
	// Glyph cell half-extent in pixels.
	cell := radius * 0.22
	for bit := 0; bit < 6; bit++ {
		if class&(1<<bit) == 0 {
			continue
		}
		col := bit % 2    // 2 columns
		rowIdx := bit / 2 // 3 rows
		gx := cx + (float64(col)-0.5)*2.2*cell
		gy := cy + (float64(rowIdx)-1)*2.2*cell
		for y := int(gy - cell); y <= int(gy+cell); y++ {
			for x := int(gx - cell); x <= int(gx+cell); x++ {
				if x < 0 || x >= size || y < 0 || y >= size {
					continue
				}
				idx := y*size + x
				img.Data[idx] = glyph.r
				img.Data[plane+idx] = glyph.g
				img.Data[2*plane+idx] = glyph.b
			}
		}
	}
	// Class 0 has no bits set; give it a centre dot so it is not blank.
	if class == 0 {
		for y := int(cy - cell); y <= int(cy+cell); y++ {
			for x := int(cx - cell); x <= int(cx+cell); x++ {
				if x < 0 || x >= size || y < 0 || y >= size {
					continue
				}
				idx := y*size + x
				img.Data[idx] = glyph.r
				img.Data[plane+idx] = glyph.g
				img.Data[2*plane+idx] = glyph.b
			}
		}
	}
}

// applyContrast compresses pixel values towards 0.5 by the given factor.
func applyContrast(img *tensor.Tensor, factor float64) {
	f := float32(factor)
	for i, v := range img.Data {
		img.Data[i] = 0.5 + (v-0.5)*f
	}
}

// boxBlur applies a 3×3 mean filter per channel.
func boxBlur(img *tensor.Tensor) {
	size := img.Shape[1]
	plane := size * size
	src := make([]float32, plane)
	for ch := 0; ch < img.Shape[0]; ch++ {
		data := img.Data[ch*plane : (ch+1)*plane]
		copy(src, data)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				var sum float32
				var n float32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= size || xx < 0 || xx >= size {
							continue
						}
						sum += src[yy*size+xx]
						n++
					}
				}
				data[y*size+x] = sum / n
			}
		}
	}
}

// occlude pastes a random grey rectangle covering part of the sign.
func occlude(img *tensor.Tensor, r *xrand.Rand) {
	size := img.Shape[1]
	plane := size * size
	w := 3 + r.Intn(4)
	h := 3 + r.Intn(4)
	x0 := r.Intn(size - w)
	y0 := r.Intn(size - h)
	shade := 0.3 + 0.4*r.Float32()
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			idx := y*size + x
			img.Data[idx] = shade
			img.Data[plane+idx] = shade
			img.Data[2*plane+idx] = shade
		}
	}
}

func clamp01(img *tensor.Tensor) {
	for i, v := range img.Data {
		if v < 0 {
			img.Data[i] = 0
		} else if v > 1 {
			img.Data[i] = 1
		}
	}
}
