package signs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/xrand"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TrainPerClass = 3
	cfg.TestPerClass = 2
	return cfg
}

func TestGenerateCounts(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != NumClasses*3 {
		t.Fatalf("train size %d, want %d", len(ds.Train), NumClasses*3)
	}
	if len(ds.Test) != NumClasses*2 {
		t.Fatalf("test size %d, want %d", len(ds.Test), NumClasses*2)
	}
}

// datasetsIdentical reports whether two datasets are byte-identical across
// both splits (labels and every pixel).
func datasetsIdentical(a, b *Dataset) error {
	for split, pair := range map[string][2][]nn.Sample{
		"train": {a.Train, b.Train},
		"test":  {a.Test, b.Test},
	} {
		x, y := pair[0], pair[1]
		if len(x) != len(y) {
			return fmt.Errorf("%s sizes differ: %d vs %d", split, len(x), len(y))
		}
		for i := range x {
			if x[i].Label != y[i].Label {
				return fmt.Errorf("%s labels diverge at %d", split, i)
			}
			if !bytes.Equal(pixelBytes(x[i].X.Data), pixelBytes(y[i].X.Data)) {
				return fmt.Errorf("%s pixels diverge at sample %d", split, i)
			}
		}
	}
	return nil
}

// pixelBytes reinterprets a float32 image as raw bytes so equality is exact
// bit-identity, not merely numeric (-0 vs 0, NaN payloads).
func pixelBytes(data []float32) []byte {
	out := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// TestGenerateDeterministic: the serving stack warms its models from this
// generator at startup, so the same config+seed must yield a byte-identical
// dataset on every call.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := datasetsIdentical(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateConcurrent exercises concurrent Generate calls under the race
// detector: generation must share no hidden mutable state, and every
// concurrent result must be byte-identical to a sequential baseline.
func TestGenerateConcurrent(t *testing.T) {
	baseline, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*Dataset, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = Generate(smallConfig())
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if err := datasetsIdentical(baseline, results[w]); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for j := range a.Test[0].X.Data {
		if a.Test[0].X.Data[j] != b.Test[0].X.Data[j] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical images")
	}
}

func TestPixelRange(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Test {
		for _, v := range s.X.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
	}
}

func TestImageShape(t *testing.T) {
	r := xrand.New(1)
	img := Render(7, r, DefaultConfig())
	want := []int{nn.InputChannels, nn.InputSize, nn.InputSize}
	if len(img.Shape) != 3 {
		t.Fatalf("shape %v", img.Shape)
	}
	for i, d := range want {
		if img.Shape[i] != d {
			t.Fatalf("shape %v, want %v", img.Shape, want)
		}
	}
}

func TestLabelsCoverAllClasses(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, s := range ds.Train {
		if s.Label < 0 || s.Label >= NumClasses {
			t.Fatalf("label %d out of range", s.Label)
		}
		seen[s.Label]++
	}
	if len(seen) != NumClasses {
		t.Fatalf("only %d classes present in train set", len(seen))
	}
	for class, count := range seen {
		if count != 3 {
			t.Fatalf("class %d has %d train samples, want 3", class, count)
		}
	}
}

func TestTrainSetIsShuffled(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// If unshuffled, the labels would be grouped in runs of TrainPerClass.
	runs := 0
	for i := 1; i < len(ds.Train); i++ {
		if ds.Train[i].Label != ds.Train[i-1].Label {
			runs++
		}
	}
	if runs < NumClasses*2 {
		t.Fatalf("train labels look unshuffled (%d label changes)", runs)
	}
}

func TestClassesAreVisuallyDistinct(t *testing.T) {
	// Noise-free renders of two different classes must differ substantially;
	// same class from the same stream state should be reproducible.
	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.BlurProb = 0
	cfg.OcclusionProb = 0
	cfg.LowContrastProb = 0
	cfg.Jitter = 0

	a := Render(1, xrand.New(5), cfg)
	b := Render(2, xrand.New(5), cfg)
	var diff float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		diff += d * d
	}
	if diff < 1 {
		t.Fatalf("classes 1 and 2 nearly identical (sq diff %v)", diff)
	}
}

func TestClassShapeMapping(t *testing.T) {
	if ClassShape(0) != ShapeCircle {
		t.Fatal("class 0 should be a circle")
	}
	if ClassShape(4) != ShapeOctagon {
		t.Fatal("class 4 should be an octagon")
	}
	if ClassShape(5) != ShapeCircle {
		t.Fatal("class 5 should wrap to circle")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TrainPerClass: -1, TestPerClass: 1},
		{TrainPerClass: 0, TestPerClass: 0},
		{TrainPerClass: 1, TestPerClass: 1, BlurProb: 1.5},
		{TrainPerClass: 1, TestPerClass: 1, Noise: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
}

func TestInShapeGeometry(t *testing.T) {
	// Centre is inside every shape; far corner is outside every shape.
	for s := ShapeCircle; s <= ShapeOctagon; s++ {
		if !inShape(s, 0, 0) {
			t.Errorf("shape %d: centre not inside", s)
		}
		if inShape(s, 5, 5) {
			t.Errorf("shape %d: far point inside", s)
		}
	}
	// Triangle-up apex: near the top, only a thin slice is inside.
	if inShape(ShapeTriangleUp, 0.8, -0.9) {
		t.Error("triangle-up should be thin at the apex")
	}
	if !inShape(ShapeTriangleUp, 0.8, 0.9) {
		t.Error("triangle-up should be wide at the base")
	}
}

func TestASeparableConfigIsLearnable(t *testing.T) {
	// Smoke test across packages: with low noise, even a tiny dense model
	// learns a few classes well above chance. Full-scale training quality
	// is exercised by the Table II experiment.
	cfg := Config{
		TrainPerClass: 30,
		TestPerClass:  10,
		Noise:         0.02,
		Jitter:        1,
		Seed:          7,
	}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only the first 5 classes for speed.
	var train, test []nn.Sample
	for _, s := range ds.Train {
		if s.Label < 5 {
			train = append(train, s)
		}
	}
	for _, s := range ds.Test {
		if s.Label < 5 {
			test = append(test, s)
		}
	}
	r := xrand.New(1)
	net := &nn.Network{Name: "probe", Layers: []nn.Layer{
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", nn.InputChannels*nn.InputSize*nn.InputSize, 32, r),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 32, 5, r),
	}}
	opt := nn.NewSGD(0.01, 0.9)
	for epoch := 0; epoch < 15; epoch++ {
		for i := 0; i+10 <= len(train); i += 10 {
			if _, err := net.TrainBatch(train[i:i+10], opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	acc, err := net.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 { // chance is 0.2
		t.Fatalf("probe accuracy %v: dataset classes not learnable", acc)
	}
}

func BenchmarkRender(b *testing.B) {
	r := xrand.New(1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(i%NumClasses, r, cfg)
	}
}
