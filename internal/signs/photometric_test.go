package signs

import (
	"math"
	"testing"
)

// TestPhotometricShiftZeroIsNoOp: datasets rendered with an explicit zero
// shift must be byte-identical to the pre-knob output — the knob may not
// perturb existing experiments, goldens or trained models.
func TestPhotometricShiftZeroIsNoOp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainPerClass, cfg.TestPerClass = 2, 2
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PhotometricShift = 0
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Test {
		for j := range a.Test[i].X.Data {
			if a.Test[i].X.Data[j] != b.Test[i].X.Data[j] {
				t.Fatalf("sample %d pixel %d differs under zero shift", i, j)
			}
		}
	}
}

// TestPhotometricShiftDarkensAndCompresses: a positive shift must lower the
// mean pixel value and reduce per-image dynamic range, monotonically in the
// shift, without leaving [0, 1].
func TestPhotometricShiftDarkensAndCompresses(t *testing.T) {
	stats := func(shift float64) (mean, spread float64) {
		cfg := DefaultConfig()
		cfg.TrainPerClass, cfg.TestPerClass = 0, 4
		cfg.PhotometricShift = shift
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum, sq float64
		var n int
		for _, s := range ds.Test {
			for _, v := range s.X.Data {
				f := float64(v)
				if f < 0 || f > 1 {
					t.Fatalf("pixel %v outside [0,1] at shift %v", f, shift)
				}
				sum += f
				sq += f * f
				n++
			}
		}
		mean = sum / float64(n)
		return mean, math.Sqrt(sq/float64(n) - mean*mean)
	}
	m0, s0 := stats(0)
	m5, s5 := stats(0.5)
	m9, s9 := stats(0.9)
	if !(m9 < m5 && m5 < m0) {
		t.Fatalf("mean not monotonically darker: %v %v %v", m0, m5, m9)
	}
	if !(s9 < s5 && s5 < s0) {
		t.Fatalf("spread not monotonically compressed: %v %v %v", s0, s5, s9)
	}
}

func TestPhotometricShiftValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhotometricShift = 1.2
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for shift > 1")
	}
	cfg.PhotometricShift = math.NaN()
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for NaN shift")
	}
	cfg.PhotometricShift = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for negative shift")
	}
}
