package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"mvml/internal/xrand"
)

func TestNewShapeAndZero(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(2, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	a, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", a.At(1, 2))
	}
	if _, err := FromSlice(data, 2, 2); err == nil {
		t.Fatal("expected error for mismatched shape")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if a.At(2, 1) != 7.5 {
		t.Fatalf("At after Set = %v", a.At(2, 1))
	}
	if a.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 42
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	a.Data[7] = 3
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(1, 3) != 3 {
		t.Fatal("Reshape changed element order")
	}
	if _, err := a.Reshape(5, 5); err == nil {
		t.Fatal("expected error for incompatible reshape")
	}
	// Reshape is a view.
	b.Data[0] = 9
	if a.Data[0] != 9 {
		t.Fatal("Reshape should share data")
	}
}

func TestAddScaleAXPY(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3}, 3)
	b, _ := FromSlice([]float32{10, 20, 30}, 3)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace got %v", a.Data)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 22 {
		t.Fatalf("ScaleInPlace got %v", a.Data)
	}
	if err := a.AXPY(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[1] != 44+10 {
		t.Fatalf("AXPY got %v", a.Data)
	}
	short := New(2)
	if err := a.AddInPlace(short); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := a.AXPY(1, short); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	c := New(6)
	if _, err := MatMul(a, c); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	r := xrand.New(1)
	a := New(4, 3)
	b := New(4, 5)
	a.RandomizeUniform(r, -1, 1)
	b.RandomizeUniform(r, -1, 1)

	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want, err := MatMul(at, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	r := xrand.New(2)
	a := New(3, 4)
	b := New(5, 4)
	a.RandomizeUniform(r, -1, 1)
	b.RandomizeUniform(r, -1, 1)

	bt := New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want, err := MatMul(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestConv2DShape(t *testing.T) {
	cases := []struct {
		h, w, kh, kw, stride, pad, oh, ow int
	}{
		{32, 32, 3, 3, 1, 1, 32, 32},
		{32, 32, 3, 3, 2, 1, 16, 16},
		{28, 28, 5, 5, 1, 0, 24, 24},
		{8, 8, 2, 2, 2, 0, 4, 4},
	}
	for _, c := range cases {
		oh, ow := Conv2DShape(c.h, c.w, c.kh, c.kw, c.stride, c.pad)
		if oh != c.oh || ow != c.ow {
			t.Errorf("Conv2DShape(%+v) = %d,%d", c, oh, ow)
		}
	}
}

// convNaive is a direct convolution used as the reference implementation.
func convNaive(in *Tensor, kernel *Tensor, stride, pad int) *Tensor {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oc, kh, kw := kernel.Shape[0], kernel.Shape[2], kernel.Shape[3]
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float32
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*stride + ky - pad
							ix := ox*stride + kx - pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							sum += in.At(ch, iy, ix) * kernel.At(o, ch, ky, kx)
						}
					}
				}
				out.Set(sum, o, oy, ox)
			}
		}
	}
	return out
}

func TestIm2ColConvolutionMatchesNaive(t *testing.T) {
	r := xrand.New(3)
	in := New(2, 7, 7)
	in.RandomizeUniform(r, -1, 1)
	kernel := New(3, 2, 3, 3) // (outC, inC, kh, kw)
	kernel.RandomizeUniform(r, -1, 1)

	for _, cfg := range []struct{ stride, pad int }{{1, 0}, {1, 1}, {2, 1}} {
		want := convNaive(in, kernel, cfg.stride, cfg.pad)

		cols, err := Im2Col(in, 3, 3, cfg.stride, cfg.pad)
		if err != nil {
			t.Fatal(err)
		}
		kmat, err := kernel.Reshape(3, 2*3*3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMul(kmat, cols)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-4 {
				t.Fatalf("im2col conv mismatch (stride=%d pad=%d) at %d: %v vs %v",
					cfg.stride, cfg.pad, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> must hold for the pair to be valid
	// forward/backward operators.
	r := xrand.New(4)
	x := New(2, 6, 6)
	x.RandomizeUniform(r, -1, 1)
	const kh, kw, stride, pad = 3, 3, 2, 1

	cols, err := Im2Col(x, kh, kw, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	y := New(cols.Shape[0], cols.Shape[1])
	y.RandomizeUniform(r, -1, 1)

	var lhs float64
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}

	back, err := Col2Im(y, 2, 6, 6, kh, kw, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImShapeError(t *testing.T) {
	bad := New(3, 3)
	if _, err := Col2Im(bad, 1, 6, 6, 3, 3, 1, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestIm2ColErrors(t *testing.T) {
	if _, err := Im2Col(New(4, 4), 3, 3, 1, 0); err == nil {
		t.Fatal("expected rank error for 2-D input")
	}
	if _, err := Im2Col(New(1, 2, 2), 5, 5, 1, 0); err == nil {
		t.Fatal("expected empty-output error")
	}
}

func TestArgMax(t *testing.T) {
	a, _ := FromSlice([]float32{0.1, 0.7, 0.7, 0.2}, 4)
	if got := a.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want first maximum 1", got)
	}
}

func TestPropertyMatMulIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(5)
		a := New(n, n)
		a.RandomizeUniform(r, -2, 2)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c, err := MatMul(a, id)
		if err != nil {
			return false
		}
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-c.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := xrand.New(1)
	a := New(64, 64)
	c := New(64, 64)
	a.RandomizeUniform(r, -1, 1)
	c.RandomizeUniform(r, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	r := xrand.New(1)
	in := New(3, 32, 32)
	in.RandomizeUniform(r, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Im2Col(in, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
