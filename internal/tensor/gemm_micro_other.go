//go:build !amd64

package tensor

// haveGemmAsm is false off amd64: GemmPacked always runs the portable
// gemmMicroGo kernel, which is bitwise identical by construction.
const haveGemmAsm = false

// gemmMicroAsm is never called when haveGemmAsm is false; this stub only
// satisfies the reference so the dispatch code compiles everywhere.
func gemmMicroAsm(c, ap, bp *float32, ldc, kk int) {
	panic("tensor: gemmMicroAsm without asm support")
}

// gemmInt8MicroAsm is never called when haveGemmAsm is false.
func gemmInt8MicroAsm(c *int32, ap, bp *int16, ldc, kp int) {
	panic("tensor: gemmInt8MicroAsm without asm support")
}

// quantPackPairAsm is never called when haveGemmAsm is false.
func quantPackPairAsm(dst *int16, r0, r1 *float32, inv float32, panels, stride int) {
	panic("tensor: quantPackPairAsm without asm support")
}
