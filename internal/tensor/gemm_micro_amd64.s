// SSE2 micro-kernel for GemmPacked: one 4×8 output tile held in eight XMM
// accumulators (row r lives in X(2r) cols 0–3 and X(2r+1) cols 4–7) across
// the full K loop. MULPS/ADDPS perform one IEEE single rounding per lane per
// op — no FMA contraction — and every lane accumulates in ascending k order,
// so the tile is bitwise identical to the scalar reference kernel.

#include "textflag.h"

// func gemmMicroAsm(c, ap, bp *float32, ldc, kk int)
TEXT ·gemmMicroAsm(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DX
	MOVQ ldc+24(FP), CX
	MOVQ kk+32(FP), AX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

loop:
	MOVUPS (DX), X8    // b[k][0:4]
	MOVUPS 16(DX), X9  // b[k][4:8]

	MOVSS  (SI), X10   // broadcast a[k][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(SI), X10  // broadcast a[k][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X2
	ADDPS  X11, X3

	MOVSS  8(SI), X10  // broadcast a[k][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(SI), X10 // broadcast a[k][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X6
	ADDPS  X11, X7

	ADDQ $16, SI
	ADDQ $32, DX
	DECQ AX
	JNE  loop

	// Store the tile: rows at c, c+ldc, c+2·ldc, c+3·ldc (float strides).
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	LEAQ   (DI)(CX*4), DI
	MOVUPS X2, (DI)
	MOVUPS X3, 16(DI)
	LEAQ   (DI)(CX*4), DI
	MOVUPS X4, (DI)
	MOVUPS X5, 16(DI)
	LEAQ   (DI)(CX*4), DI
	MOVUPS X6, (DI)
	MOVUPS X7, 16(DI)
	RET

// Int8 micro-kernel: one 4×8 int32 tile from quantized k-pair panels. Each
// PMADDWD (PMADDWL) multiplies eight int16 values pairwise and adds adjacent
// products into four int32 lanes — one instruction covers two k steps of
// four output columns; PADDL accumulation is exact, so the result equals the
// portable kernel's by value with no rounding-order caveat.

// func gemmInt8MicroAsm(c *int32, ap, bp *int16, ldc, kp int)
TEXT ·gemmInt8MicroAsm(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DX
	MOVQ ldc+24(FP), CX
	MOVQ kp+32(FP), AX

	PXOR X0, X0
	PXOR X1, X1
	PXOR X2, X2
	PXOR X3, X3
	PXOR X4, X4
	PXOR X5, X5
	PXOR X6, X6
	PXOR X7, X7

int8loop:
	MOVOU (DX), X8     // b pairs, cols 0–3
	MOVOU 16(DX), X9   // b pairs, cols 4–7

	MOVL    (SI), X10  // a pair, row 0 → broadcast dword
	PSHUFL  $0x00, X10, X10
	MOVO    X10, X11
	PMADDWL X8, X10
	PMADDWL X9, X11
	PADDL   X10, X0
	PADDL   X11, X1

	MOVL    4(SI), X10 // row 1
	PSHUFL  $0x00, X10, X10
	MOVO    X10, X11
	PMADDWL X8, X10
	PMADDWL X9, X11
	PADDL   X10, X2
	PADDL   X11, X3

	MOVL    8(SI), X10 // row 2
	PSHUFL  $0x00, X10, X10
	MOVO    X10, X11
	PMADDWL X8, X10
	PMADDWL X9, X11
	PADDL   X10, X4
	PADDL   X11, X5

	MOVL    12(SI), X10 // row 3
	PSHUFL  $0x00, X10, X10
	MOVO    X10, X11
	PMADDWL X8, X10
	PMADDWL X9, X11
	PADDL   X10, X6
	PADDL   X11, X7

	ADDQ $16, SI
	ADDQ $32, DX
	DECQ AX
	JNE  int8loop

	MOVOU X0, (DI)
	MOVOU X1, 16(DI)
	LEAQ  (DI)(CX*4), DI
	MOVOU X2, (DI)
	MOVOU X3, 16(DI)
	LEAQ  (DI)(CX*4), DI
	MOVOU X4, (DI)
	MOVOU X5, 16(DI)
	LEAQ  (DI)(CX*4), DI
	MOVOU X6, (DI)
	MOVOU X7, 16(DI)
	RET

// Quantize-and-pack: one k-pair of rows swept across all full panels.
// Pipeline per panel: v·inv (MULPS) → clamp to [-127, 127] (MINPS maps NaN
// and +big to +127, MAXPS the rest to -127) → CVTPS2PL (round half to even)
// → PACKSSLW to int16 (saturation inert after the clamp) → PUNPCK[L/H]WD to
// the [k0c k1c] pair interleave the GEMM kernel consumes. The scalar
// QuantizeInt8 implements the identical pipeline, so both packers agree on
// every input.

// func quantPackPairAsm(dst *int16, r0, r1 *float32, inv float32, panels, stride int)
TEXT ·quantPackPairAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), DX
	MOVSS inv+24(FP), X12
	SHUFPS $0x00, X12, X12
	MOVQ panels+32(FP), AX
	MOVQ stride+40(FP), R8
	SHLQ $1, R8               // stride: int16 elements → bytes

	MOVL $0x42FE0000, R9      // 127.0f
	MOVL R9, X13
	SHUFPS $0x00, X13, X13
	MOVL $0xC2FE0000, R9      // -127.0f
	MOVL R9, X14
	SHUFPS $0x00, X14, X14

packloop:
	MOVUPS (SI), X8           // r0 cols 0–3
	MOVUPS 16(SI), X9         // r0 cols 4–7
	MOVUPS (DX), X10          // r1 cols 0–3
	MOVUPS 16(DX), X11        // r1 cols 4–7
	MULPS  X12, X8
	MULPS  X12, X9
	MULPS  X12, X10
	MULPS  X12, X11
	MINPS  X13, X8
	MINPS  X13, X9
	MINPS  X13, X10
	MINPS  X13, X11
	MAXPS  X14, X8
	MAXPS  X14, X9
	MAXPS  X14, X10
	MAXPS  X14, X11
	CVTPS2PL X8, X8
	CVTPS2PL X9, X9
	CVTPS2PL X10, X10
	CVTPS2PL X11, X11
	PACKSSLW X9, X8           // r0 as 8 int16
	PACKSSLW X11, X10         // r1 as 8 int16
	MOVO     X8, X15
	PUNPCKLWL X10, X8         // [r0c0 r1c0 … r0c3 r1c3]
	PUNPCKHWL X10, X15        // [r0c4 r1c4 … r0c7 r1c7]
	MOVOU X8, (DI)
	MOVOU X15, 16(DI)

	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ R8, DI
	DECQ AX
	JNE  packloop
	RET
