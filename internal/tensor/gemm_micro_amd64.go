//go:build amd64

package tensor

// haveGemmAsm gates the SSE2 micro-kernel; SSE2 is part of the amd64
// baseline, so no runtime feature detection is needed.
const haveGemmAsm = true

// gemmMicroAsm computes one full gemmMR×gemmNR register tile from packed
// panels ap (k-major, MR-wide) and bp (k-major, NR-wide), storing rows at c,
// c+ldc, c+2·ldc, c+3·ldc. Each output element accumulates its kk partial
// products in ascending k order with one IEEE single rounding per multiply
// and per add (MULPS/ADDPS, no FMA), so the result is bitwise identical to
// the scalar gemmMicroGo. kk must be >= 1.
//
//go:noescape
func gemmMicroAsm(c, ap, bp *float32, ldc, kk int)

// gemmInt8MicroAsm computes one full gemmMR×gemmNR int32 tile from quantized
// k-pair panels (PMADDWD multiply-add of int16 pairs, PADDD accumulation).
// Integer arithmetic is exact, so this is identical to gemmInt8MicroGo by
// value, not just bitwise-compatible. kp must be >= 1.
//
//go:noescape
func gemmInt8MicroAsm(c *int32, ap, bp *int16, ldc, kp int)

// quantPackPairAsm quantizes one k-pair of rows (r0, r1) across `panels`
// full gemmNR-column panels: for panel jp it reads 8 floats from each row at
// column jp·8, computes clamp(v·inv) then CVTPS2DQ (round half to even —
// exactly QuantizeInt8), interleaves the two rows pairwise and stores 16
// int16s at dst + jp·stride. stride is in int16 elements.
//
//go:noescape
func quantPackPairAsm(dst *int16, r0, r1 *float32, inv float32, panels, stride int)
