// Package tensor implements the minimal dense float32 tensor machinery the
// neural-network substrate needs: shape bookkeeping, element-wise kernels,
// matrix multiplication, and the im2col transform used by the convolution
// layers. The focus is correctness and determinism on a single CPU, not peak
// throughput.
package tensor

import (
	"fmt"

	"mvml/internal/xrand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero tensor with the given shape. It panics on non-positive
// dimensions, which are always programmer errors in this codebase.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is NOT
// copied. It returns an error if the element count does not match the shape.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension in shape %v", shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, got %d", shape, n, len(data))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// It returns an error if the element counts differ or any dimension is
// non-positive (two negative dimensions can otherwise sneak past a
// count-only check and panic downstream).
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension in shape %v", shape)
		}
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v to %v", t.Shape, shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandomizeUniform fills the tensor with uniform values in [lo, hi).
func (t *Tensor) RandomizeUniform(r *xrand.Rand, lo, hi float32) {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*r.Float32()
	}
}

// RandomizeNormal fills the tensor with N(mean, stddev) values, the
// initialisation primitive behind He/Xavier init in the nn package.
func (t *Tensor) RandomizeNormal(r *xrand.Rand, mean, stddev float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Normal(mean, stddev))
	}
}

// AddInPlace adds other element-wise into t. It returns an error on length
// mismatch (shapes may differ as long as the element counts agree, which the
// residual layer exploits).
func (t *Tensor) AddInPlace(other *Tensor) error {
	if len(t.Data) != len(other.Data) {
		return fmt.Errorf("tensor: add length mismatch %d vs %d", len(t.Data), len(other.Data))
	}
	for i, v := range other.Data {
		t.Data[i] += v
	}
	return nil
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += alpha*x (same length required).
func (t *Tensor) AXPY(alpha float32, x *Tensor) error {
	if len(t.Data) != len(x.Data) {
		return fmt.Errorf("tensor: axpy length mismatch %d vs %d", len(t.Data), len(x.Data))
	}
	for i, v := range x.Data {
		t.Data[i] += alpha * v
	}
	return nil
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n). It returns an
// error on rank or inner-dimension mismatch.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions %d and %d differ", k, k2)
	}
	c := New(m, n)
	// ikj loop order: streams through B and C rows for cache friendliness.
	// Every product is accumulated — a zero-skip shortcut here would suppress
	// IEEE 0·Inf = NaN and hide fault-injected corruption from the voter.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n), used by dense
// backprop without materialising the transpose.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA requires 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransA leading dimensions %d and %d differ", k, k2)
	}
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k).
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB requires 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransB trailing dimensions %d and %d differ", k, k2)
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var sum float32
			for kk, av := range arow {
				sum += av * brow[kk]
			}
			crow[j] = sum
		}
	}
	return c, nil
}

// Conv2DShape returns the output height and width of a convolution over an
// input of the given spatial size with the given kernel, stride and padding.
func Conv2DShape(h, w, kh, kw, stride, pad int) (int, int) {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	return oh, ow
}

// Im2Col unrolls an input tensor of shape (C, H, W) into a matrix of shape
// (C*kh*kw, oh*ow) so convolution becomes a single MatMul. Out-of-bounds
// (padding) positions contribute zeros.
func Im2Col(in *Tensor, kh, kw, stride, pad int) (*Tensor, error) {
	if len(in.Shape) != 3 {
		return nil, fmt.Errorf("tensor: Im2Col requires (C,H,W) input, got %v", in.Shape)
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: Im2Col output is empty for input %v kernel %dx%d stride %d pad %d",
			in.Shape, kh, kw, stride, pad)
	}
	out := New(c*kh*kw, oh*ow)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				dst := out.Data[row*oh*ow : (row+1)*oh*ow]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						di += ow
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							dst[di] = in.Data[rowBase+ix]
						}
						di++
					}
				}
			}
		}
	}
	return out, nil
}

// Col2Im scatters a (C*kh*kw, oh*ow) column matrix back into a (C, H, W)
// tensor, accumulating overlapping contributions — the adjoint of Im2Col,
// used for convolution input gradients.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) (*Tensor, error) {
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		return nil, fmt.Errorf("tensor: Col2Im got shape %v, want (%d, %d)", cols.Shape, c*kh*kw, oh*ow)
	}
	out := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				src := cols.Data[row*oh*ow : (row+1)*oh*ow]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							out.Data[rowBase+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
	return out, nil
}

// ArgMax returns the index of the largest element (first occurrence).
func (t *Tensor) ArgMax() int {
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}
