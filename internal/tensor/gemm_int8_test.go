package tensor

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

// int8Naive is the obviously-correct reference: quantize both operands
// elementwise, multiply in int32 with plain triple loops.
func int8Naive(a, b *Tensor, invA, invB float32) []int32 {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	qa := make([]int32, m*k)
	for i, v := range a.Data {
		qa[i] = int32(QuantizeInt8(v, invA))
	}
	qb := make([]int32, k*n)
	for i, v := range b.Data {
		qb[i] = int32(QuantizeInt8(v, invB))
	}
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum int32
			for kk := 0; kk < k; kk++ {
				sum += qa[i*k+kk] * qb[kk*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return c
}

func int32Equal(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestGemmInt8MatchesNaive: the packed kernel (asm or portable) must equal
// the naive quantize-then-multiply reference exactly, across ragged shapes
// including odd K (zero-padded final k-pair).
func TestGemmInt8MatchesNaive(t *testing.T) {
	r := xrand.New(31)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 4}, {4, 7, 8}, {5, 2, 9}, {16, 288, 37},
		{32, 289, 513}, {7, 1, 258}, {2, 17, 1030},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		sa := Int8ScaleFor(MaxAbs(a.Data))
		sb := Int8ScaleFor(MaxAbs(b.Data))
		want := int8Naive(a, b, sa.Inv, sb.Inv)
		var pa PackedAInt8
		var pb PackedBInt8
		if err := pa.Pack(a, sa.Inv); err != nil {
			t.Fatal(err)
		}
		if err := pb.Pack(b, sb.Inv); err != nil {
			t.Fatal(err)
		}
		got := make([]int32, m*n)
		for i := range got {
			got[i] = -7 // dirty output
		}
		if err := GemmInt8Packed(got, &pa, &pb); err != nil {
			t.Fatal(err)
		}
		int32Equal(t, "GemmInt8Packed", got, want)
	}
}

// TestGemmInt8TransposedMatchesNaive: dense-layer weight packing (PackTransposed).
func TestGemmInt8TransposedMatchesNaive(t *testing.T) {
	r := xrand.New(32)
	m, k, n := 8, 87, 43
	x, w := randomMat(r, m, k), randomMat(r, n, k)
	bt := New(k, n) // materialised transpose for the reference
	for i := 0; i < n; i++ {
		for kk := 0; kk < k; kk++ {
			bt.Data[kk*n+i] = w.Data[i*k+kk]
		}
	}
	sx := Int8ScaleFor(MaxAbs(x.Data))
	sw := Int8ScaleFor(MaxAbs(w.Data))
	want := int8Naive(x, bt, sx.Inv, sw.Inv)
	var pa PackedAInt8
	var pb PackedBInt8
	if err := pa.Pack(x, sx.Inv); err != nil {
		t.Fatal(err)
	}
	if err := pb.PackTransposed(w, sw.Inv); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, m*n)
	if err := GemmInt8Packed(got, &pa, &pb); err != nil {
		t.Fatal(err)
	}
	int32Equal(t, "GemmInt8Packed/PackTransposed", got, want)
}

// TestGemmInt8WorkerInvariance: integer accumulation is exact, so every
// worker count must produce the identical int32 output.
func TestGemmInt8WorkerInvariance(t *testing.T) {
	r := xrand.New(33)
	m, k, n := 13, 96, 1339
	a, b := randomMat(r, m, k), randomMat(r, k, n)
	sa := Int8ScaleFor(MaxAbs(a.Data))
	sb := Int8ScaleFor(MaxAbs(b.Data))
	var pa PackedAInt8
	var pb PackedBInt8
	if err := pa.Pack(a, sa.Inv); err != nil {
		t.Fatal(err)
	}
	if err := pb.Pack(b, sb.Inv); err != nil {
		t.Fatal(err)
	}
	want := make([]int32, m*n)
	if err := GemmInt8Packed(want, &pa, &pb); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got := make([]int32, m*n)
		if err := GemmInt8PackedParallel(got, &pa, &pb, workers); err != nil {
			t.Fatal(err)
		}
		int32Equal(t, "GemmInt8PackedParallel", got, want)
	}
}

// TestGemmInt8MicroAsmMatchesGo: the SIMD kernel must equal its executable
// spec exactly on full tiles.
func TestGemmInt8MicroAsmMatchesGo(t *testing.T) {
	if !haveGemmAsm {
		t.Skip("no assembly kernel on this platform")
	}
	r := xrand.New(34)
	for _, kp := range []int{1, 2, 7, 144} {
		ap := make([]int16, kp*2*gemmMR)
		bp := make([]int16, kp*2*gemmNR)
		for i := range ap {
			ap[i] = int16(r.Intn(255)) - 127
		}
		for i := range bp {
			bp[i] = int16(r.Intn(255)) - 127
		}
		want := make([]int32, gemmMR*gemmNR)
		got := make([]int32, gemmMR*gemmNR)
		gemmInt8MicroGo(want, gemmNR, 0, 0, gemmMR, gemmNR, kp, ap, bp)
		gemmInt8MicroAsm(&got[0], &ap[0], &bp[0], gemmNR, kp)
		int32Equal(t, "gemmInt8MicroAsm", got, want)
	}
}

func TestQuantizeInt8Properties(t *testing.T) {
	s := Int8ScaleFor(2.54)
	if q := QuantizeInt8(2.54, s.Inv); q != 127 {
		t.Fatalf("maxabs quantizes to %d, want 127", q)
	}
	if q := QuantizeInt8(-2.54, s.Inv); q != -127 {
		t.Fatalf("-maxabs quantizes to %d, want -127", q)
	}
	if q := QuantizeInt8(0, s.Inv); q != 0 {
		t.Fatalf("zero quantizes to %d, want 0", q)
	}
	// NaN rides the MINPS-style upper clamp — pinned so the portable and
	// SIMD packers agree even on garbage inputs.
	if q := QuantizeInt8(float32(math.NaN()), s.Inv); q != 127 {
		t.Fatalf("NaN quantizes to %d, want 127", q)
	}
	if q := QuantizeInt8(0.5, 1); q != 0 {
		t.Fatalf("0.5 quantizes to %d, want 0 (half to even)", q)
	}
	if q := QuantizeInt8(1.5, 1); q != 2 {
		t.Fatalf("1.5 quantizes to %d, want 2 (half to even)", q)
	}
	if q := QuantizeInt8(-2.5, 1); q != -2 {
		t.Fatalf("-2.5 quantizes to %d, want -2 (half to even)", q)
	}
	if q := QuantizeInt8(float32(math.Inf(1)), s.Inv); q != 127 {
		t.Fatalf("+Inf quantizes to %d, want 127", q)
	}
	if q := QuantizeInt8(float32(math.Inf(-1)), s.Inv); q != -127 {
		t.Fatalf("-Inf quantizes to %d, want -127", q)
	}
	zs := Int8ScaleFor(0)
	if zs.Scale != 1 || zs.Inv != 1 {
		t.Fatalf("zero-maxabs scale = %+v, want identity", zs)
	}
}

// TestPackedBInt8MatchesScalarSpec: every slot of the packed layout must
// hold exactly QuantizeInt8 of the corresponding source element (or 0 in a
// padded lane) — this pins the SIMD packer to the scalar spec, including on
// specials riding the clamp pipeline.
func TestPackedBInt8MatchesScalarSpec(t *testing.T) {
	r := xrand.New(35)
	for _, dims := range [][2]int{{7, 29}, {288, 96}, {17, 8}, {5, 1030}} {
		k, n := dims[0], dims[1]
		b := randomMat(r, k, n)
		b.Data[r.Intn(k*n)] = float32(math.NaN())
		b.Data[r.Intn(k*n)] = float32(math.Inf(1))
		b.Data[r.Intn(k*n)] = float32(math.Inf(-1))
		s := Int8ScaleFor(3)
		var pb PackedBInt8
		if err := pb.Pack(b, s.Inv); err != nil {
			t.Fatal(err)
		}
		kp := kpairs(k)
		stride := kp * 2 * gemmNR
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				jp, c := j/gemmNR, j%gemmNR
				slot := pb.data[jp*stride+(kk/2)*gemmNR*2+2*c+kk%2]
				want := int16(QuantizeInt8(b.Data[kk*n+j], s.Inv))
				if slot != want {
					t.Fatalf("k=%d n=%d slot (%d,%d) = %d, want %d (v=%v)",
						k, n, kk, j, slot, want, b.Data[kk*n+j])
				}
			}
		}
	}
}

// BenchmarkGemmInt8AlexConv3 mirrors BenchmarkGemmPackedAlexConv3: quantized
// activation packing per call (as the arena does) + exact int32 GEMM.
func BenchmarkGemmInt8AlexConv3(b *testing.B) {
	r := xrand.New(9)
	m, k, n := 32, 288, 4608
	x, y := randomMat(r, m, k), randomMat(r, k, n)
	sx := Int8ScaleFor(MaxAbs(x.Data))
	sy := Int8ScaleFor(MaxAbs(y.Data))
	var pa PackedAInt8
	var pb PackedBInt8
	if err := pa.Pack(x, sx.Inv); err != nil { // weights: packed once, cached
		b.Fatal(err)
	}
	c := make([]int32, m*n)
	out := New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pb.Pack(y, sy.Inv); err != nil { // activations: per call
			b.Fatal(err)
		}
		if err := GemmInt8Packed(c, &pa, &pb); err != nil {
			b.Fatal(err)
		}
		DequantInt32(out.Data, c, sx.Scale*sy.Scale)
	}
}

// FuzzInt8QuantRoundTrip: quantization must be monotone (v1 <= v2 implies
// q1 <= q2), clamp to ±127, and round-trip within half a step of the
// original value inside the calibrated range.
func FuzzInt8QuantRoundTrip(f *testing.F) {
	f.Add(float32(1.5), float32(-0.3), float32(2.0))
	f.Add(float32(-2.0), float32(2.0), float32(0.5))
	f.Add(float32(0), float32(0), float32(0))
	f.Fuzz(func(t *testing.T, v1, v2, maxAbs float32) {
		if v1 != v1 || v2 != v2 || maxAbs != maxAbs {
			return // NaN inputs have their own pinned behavior
		}
		if math.IsInf(float64(maxAbs), 0) {
			return
		}
		if maxAbs < 0 {
			maxAbs = -maxAbs
		}
		s := Int8ScaleFor(maxAbs)
		q1, q2 := QuantizeInt8(v1, s.Inv), QuantizeInt8(v2, s.Inv)
		if q1 > 127 || q1 < -127 || q2 > 127 || q2 < -127 {
			t.Fatalf("clamp violated: %d %d", q1, q2)
		}
		if v1 <= v2 && q1 > q2 {
			t.Fatalf("monotonicity violated: q(%v)=%d > q(%v)=%d", v1, q1, v2, q2)
		}
		// Round-trip error bound inside the calibrated range.
		if maxAbs > 0 && v1 >= -maxAbs && v1 <= maxAbs && !math.IsInf(float64(v1), 0) {
			back := float64(q1) * float64(s.Scale)
			step := float64(s.Scale)
			if diff := math.Abs(back - float64(v1)); diff > step*0.51+1e-6 {
				t.Fatalf("round-trip error %v exceeds half step %v (v=%v q=%d scale=%v)",
					diff, step/2, v1, q1, s.Scale)
			}
		}
	})
}
