package tensor

import "unsafe"

// overlaps reports whether two float32 slices share any backing memory. The
// in-place GEMM kernels zero (or overwrite) their output before reading the
// operands, so an output that aliases an input is silently corrupted — the
// shape checks reject it up front instead. Disjoint sub-slices of one
// backing array (arena suballocation) do not overlap and are fine.
//
// The uintptr comparison is safe here: both slices are live arguments for
// the duration of the call, so their backing arrays cannot move between the
// two conversions.
func overlaps(x, y []float32) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	x0 := uintptr(unsafe.Pointer(unsafe.SliceData(x)))
	x1 := x0 + uintptr(len(x))*unsafe.Sizeof(float32(0))
	y0 := uintptr(unsafe.Pointer(unsafe.SliceData(y)))
	y1 := y0 + uintptr(len(y))*unsafe.Sizeof(float32(0))
	return x0 < y1 && y0 < x1
}
