package tensor

import (
	"testing"

	"mvml/internal/xrand"
)

// TestIm2ColBatchDirtyReuseAcrossShapes: the arena reuses one column buffer
// across layers and batch sizes, re-sliced to each call's geometry. When the
// output shrinks (smaller batch, bigger stride, less padding) the buffer
// still holds stale columns from the previous call past the new extent —
// every in-extent element must therefore be written, padding positions as
// explicit zeros. This pins the audit of that contract: poison the buffer
// with a sentinel between calls and require bitwise identity with a
// fresh-buffer unroll for every geometry transition.
func TestIm2ColBatchDirtyReuseAcrossShapes(t *testing.T) {
	r := xrand.New(21)
	type geom struct {
		b, c, h, w          int
		kh, kw, stride, pad int
	}
	// Deliberate shrink transitions: batch 4→1, stride 1→2 (spatial collapse),
	// pad 2→0, and a grow back at the end to catch under-slicing too.
	geoms := []geom{
		{4, 3, 12, 12, 3, 3, 1, 2},
		{1, 3, 12, 12, 3, 3, 1, 2},
		{2, 3, 12, 12, 3, 3, 2, 1},
		{2, 2, 8, 8, 5, 5, 2, 0},
		{1, 1, 6, 6, 3, 3, 3, 0},
		{4, 3, 12, 12, 3, 3, 1, 2},
	}
	shared := &Tensor{}
	for _, g := range geoms {
		in := New(g.b, g.c, g.h, g.w)
		in.RandomizeUniform(r, -1, 1)
		oh, ow := Conv2DShape(g.h, g.w, g.kh, g.kw, g.stride, g.pad)
		rows, cols := g.c*g.kh*g.kw, g.b*oh*ow
		// Re-slice the shared buffer the way the arena does, poisoning the
		// whole capacity so any unwritten element is visible.
		if cap(shared.Data) < rows*cols {
			shared.Data = make([]float32, rows*cols)
		}
		shared.Data = shared.Data[:cap(shared.Data)]
		for i := range shared.Data {
			shared.Data[i] = 1e30 // sentinel: never a legal im2col value here
		}
		shared.Data = shared.Data[:rows*cols]
		shared.Shape = []int{rows, cols}
		if err := Im2ColBatch(in, g.kh, g.kw, g.stride, g.pad, shared); err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		fresh := New(rows, cols)
		if err := Im2ColBatch(in, g.kh, g.kw, g.stride, g.pad, fresh); err != nil {
			t.Fatalf("%+v fresh: %v", g, err)
		}
		bitsEqual(t, "Im2ColBatch dirty reuse", shared.Data, fresh.Data)
	}
}
