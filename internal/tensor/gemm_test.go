package tensor

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

// bitsEqual compares two float32 slices bit for bit, so NaN payloads and
// signed zeros count.
func bitsEqual(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %#x), want %v (bits %#x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func randomMat(r *xrand.Rand, m, n int) *Tensor {
	t := New(m, n)
	t.RandomizeUniform(r, -2, 2)
	return t
}

// TestGemmBitwiseMatchesMatMul: the blocked in-place kernel must reproduce
// the allocating kernel bit for bit, including at sizes that exercise
// partial row and inner-dimension blocks.
func TestGemmBitwiseMatchesMatMul(t *testing.T) {
	r := xrand.New(1)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 4}, {16, 300, 7}, {130, 257, 9}, {65, 64, 33},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		c := New(m, n)
		c.Fill(42) // dirty buffer: Gemm must overwrite, not accumulate
		if err := Gemm(c, a, b); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "Gemm", c.Data, want.Data)
	}
}

func TestGemmTransABitwiseMatchesMatMulTransA(t *testing.T) {
	r := xrand.New(2)
	a, b := randomMat(r, 9, 6), randomMat(r, 9, 5)
	want, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := New(6, 5)
	c.Fill(-1)
	if err := GemmTransA(c, a, b); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "GemmTransA", c.Data, want.Data)
}

func TestGemmTransBBitwiseMatchesMatMulTransB(t *testing.T) {
	r := xrand.New(3)
	a, b := randomMat(r, 7, 6), randomMat(r, 4, 6)
	want, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := New(7, 4)
	c.Fill(-1)
	if err := GemmTransB(c, a, b); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "GemmTransB", c.Data, want.Data)
}

// TestGemmParallelWorkerInvariance: the row-tiled fan-out must be bitwise
// identical to the sequential kernel for every worker count — the contract
// that makes the parallel path safe in the differential-voting ensemble.
func TestGemmParallelWorkerInvariance(t *testing.T) {
	r := xrand.New(4)
	m, k, n := 3*gemmRowTile+17, 129, 31
	a, b := randomMat(r, m, k), randomMat(r, k, n)
	want := New(m, n)
	if err := Gemm(want, a, b); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		c := New(m, n)
		c.Fill(7)
		if err := GemmParallel(c, a, b, workers); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "GemmParallel", c.Data, want.Data)
	}
}

func TestGemmShapeErrors(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	if err := Gemm(New(2, 4), New(6), b); err == nil {
		t.Fatal("expected rank error")
	}
	if err := Gemm(New(2, 4), a, New(2, 4)); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if err := Gemm(New(3, 4), a, b); err == nil {
		t.Fatal("expected output-shape error")
	}
	if err := GemmTransA(New(2, 4), a, b); err == nil {
		t.Fatal("expected GemmTransA inner-dimension error")
	}
	if err := GemmTransB(New(2, 3), a, New(4, 2)); err == nil {
		t.Fatal("expected GemmTransB inner-dimension error")
	}
}

// TestMatMulNaNInfPropagation is the regression for the removed zero-skip
// shortcut: a fault-injected Inf weight multiplied by an im2col padding zero
// must poison the output with NaN instead of being silently dropped.
func TestMatMulNaNInfPropagation(t *testing.T) {
	inf := float32(math.Inf(1))
	a, _ := FromSlice([]float32{0, 1}, 1, 2)   // leading zero meets Inf
	b, _ := FromSlice([]float32{inf, 2}, 2, 1) // 0·Inf + 1·2
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("MatMul suppressed 0*Inf: got %v, want NaN", c.Data[0])
	}

	at, _ := FromSlice([]float32{0, 1}, 2, 1) // transpose of a
	ct, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(ct.Data[0])) {
		t.Fatalf("MatMulTransA suppressed 0*Inf: got %v, want NaN", ct.Data[0])
	}

	// The in-place kernels must agree bit for bit, NaN payloads included.
	g := New(1, 1)
	if err := Gemm(g, a, b); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "Gemm NaN", g.Data, c.Data)
	gt := New(1, 1)
	if err := GemmTransA(gt, at, b); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "GemmTransA NaN", gt.Data, ct.Data)
}

// TestIm2ColBatchMatchesPerSample: column block b of the batched unroll must
// equal Im2Col of sample b exactly, even when the output buffer is dirty
// (padding zeros are written, not assumed).
func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	r := xrand.New(5)
	const bsz, c, h, w = 3, 2, 7, 7
	in := New(bsz, c, h, w)
	in.RandomizeUniform(r, -1, 1)
	for _, cfg := range []struct{ kh, kw, stride, pad int }{
		{3, 3, 1, 1}, {3, 3, 2, 1}, {5, 5, 1, 0}, {1, 1, 1, 0},
	} {
		oh, ow := Conv2DShape(h, w, cfg.kh, cfg.kw, cfg.stride, cfg.pad)
		out := New(c*cfg.kh*cfg.kw, bsz*oh*ow)
		out.Fill(99) // dirty buffer
		if err := Im2ColBatch(in, cfg.kh, cfg.kw, cfg.stride, cfg.pad, out); err != nil {
			t.Fatal(err)
		}
		stride := c * h * w
		for b := 0; b < bsz; b++ {
			sample := &Tensor{Shape: []int{c, h, w}, Data: in.Data[b*stride : (b+1)*stride]}
			want, err := Im2Col(sample, cfg.kh, cfg.kw, cfg.stride, cfg.pad)
			if err != nil {
				t.Fatal(err)
			}
			for row := 0; row < want.Shape[0]; row++ {
				got := out.Data[row*bsz*oh*ow+b*oh*ow : row*bsz*oh*ow+(b+1)*oh*ow]
				bitsEqual(t, "Im2ColBatch", got, want.Data[row*oh*ow:(row+1)*oh*ow])
			}
		}
	}
}

func TestIm2ColBatchErrors(t *testing.T) {
	if err := Im2ColBatch(New(2, 3, 4), 3, 3, 1, 0, New(1, 1)); err == nil {
		t.Fatal("expected rank error")
	}
	if err := Im2ColBatch(New(1, 1, 2, 2), 5, 5, 1, 0, New(1, 1)); err == nil {
		t.Fatal("expected empty-output error")
	}
	if err := Im2ColBatch(New(1, 1, 4, 4), 3, 3, 1, 0, New(9, 5)); err == nil {
		t.Fatal("expected output-shape error")
	}
}

// TestReshapeRejectsNonPositiveDims: two negative dimensions whose product
// matches the element count must not pass the count-only check.
func TestReshapeRejectsNonPositiveDims(t *testing.T) {
	a := New(2, 3)
	if _, err := a.Reshape(-2, -3); err == nil {
		t.Fatal("Reshape(-2, -3) accepted negative dimensions")
	}
	if _, err := a.Reshape(6, 0); err == nil {
		t.Fatal("Reshape(6, 0) accepted a zero dimension")
	}
	if _, err := a.Reshape(6); err != nil {
		t.Fatalf("valid reshape rejected: %v", err)
	}
}

func BenchmarkGemm64(b *testing.B) {
	r := xrand.New(1)
	a := randomMat(r, 64, 64)
	m := randomMat(r, 64, 64)
	c := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Gemm(c, a, m); err != nil {
			b.Fatal(err)
		}
	}
}
