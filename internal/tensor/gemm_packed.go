// Packed register-blocked GEMM: the throughput kernels behind the fused
// inference path. Both operands are repacked once into panel layouts that the
// MR×NR micro-kernel reads strictly sequentially — the A panels of a layer's
// weights are packed once per weight epoch and cached (see nn.InferenceArena),
// the B panels of the activations once per call.
//
// Determinism contract (same as gemm.go): every output element accumulates
// its K partial products in ascending k order inside a register-resident
// accumulator, exactly like MatMul's scalar loop, so GemmPacked results are
// bitwise identical to MatMul and to Gemm. On amd64 the micro-kernel is SSE2
// assembly — MULPS/ADDPS round each lane exactly like MULSS/ADDSS (one IEEE
// single rounding per op, no FMA contraction), so vectorising across *output
// elements* while keeping each element's k order preserves bitwise identity;
// the pure-Go kernel is the portable fallback and the executable spec.
// Packing pads partial edge panels with zeros; padded lanes have their own
// accumulator lanes which are simply never stored, so even a 0·Inf = NaN
// computed in a dead lane cannot leak into the output. GemmPackedParallel
// fans column tiles (disjoint output columns, no reduction across a tile
// boundary) over the deterministic runner, so results are bitwise identical
// for every worker count.
//
// Cache shape: the micro-kernel holds the full K extent of one MR×NR tile in
// registers (the K values seen here — im2col rows of C·kh·kw ≤ a few hundred —
// keep both panels L1-resident), the A panel of the current row block stays
// hot while the B panels stream exactly once per row block, and tiling over N
// bounds each worker's streamed span.
package tensor

import (
	"fmt"

	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

const (
	// gemmMR × gemmNR is the register block: one micro-kernel call keeps
	// MR·NR accumulators live across the whole inner dimension — on amd64,
	// eight 4-lane XMM registers (4 rows × 8 columns).
	gemmMR = 4
	gemmNR = 8
	// gemmColTile is the number of B panels (NR columns each) in one
	// parallel column tile. Tiles own disjoint output columns, so the
	// fan-out needs no reduction and is worker-count-invariant by
	// construction.
	gemmColTile = 64
)

// PackedA is the left operand packed into gemmMR-row panels: panel ip holds
// rows [ip·MR, ip·MR+MR) stored k-major (for each k, the MR row values are
// contiguous), padded with zeros past the last row. Pack with reuse — the
// buffer is grown once and repacking the same shape never allocates.
type PackedA struct {
	M, K int
	data []float32
}

// PackedB is the right operand packed into gemmNR-column panels: panel jp
// holds columns [jp·NR, jp·NR+NR) stored k-major, zero-padded past the last
// column.
type PackedB struct {
	K, N int
	data []float32
}

// grow resizes buf to n elements, reusing capacity when possible.
func grow(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// Pack packs a (M×K) into MR-row panels, reusing the buffer.
func (p *PackedA) Pack(a *Tensor) error {
	if len(a.Shape) != 2 {
		return fmt.Errorf("tensor: PackedA.Pack requires a 2-D operand, got %v", a.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	panels := (m + gemmMR - 1) / gemmMR
	p.data = grow(p.data, panels*k*gemmMR)
	p.M, p.K = m, k
	for ip := 0; ip < panels; ip++ {
		i0 := ip * gemmMR
		dst := p.data[ip*k*gemmMR : (ip+1)*k*gemmMR]
		if i0+gemmMR <= m {
			// Full panel: interleave MR source rows.
			r0 := a.Data[i0*k : (i0+1)*k]
			r1 := a.Data[(i0+1)*k : (i0+2)*k]
			r2 := a.Data[(i0+2)*k : (i0+3)*k]
			r3 := a.Data[(i0+3)*k : (i0+4)*k]
			for kk := 0; kk < k; kk++ {
				d := dst[kk*gemmMR : kk*gemmMR+gemmMR : kk*gemmMR+gemmMR]
				d[0] = r0[kk]
				d[1] = r1[kk]
				d[2] = r2[kk]
				d[3] = r3[kk]
			}
			continue
		}
		for kk := 0; kk < k; kk++ {
			for r := 0; r < gemmMR; r++ {
				if i := i0 + r; i < m {
					dst[kk*gemmMR+r] = a.Data[i*k+kk]
				} else {
					dst[kk*gemmMR+r] = 0
				}
			}
		}
	}
	return nil
}

// Pack packs b (K×N) into NR-column panels, reusing the buffer. The source is
// read row-by-row (sequentially) and scattered into the panel slots.
func (p *PackedB) Pack(b *Tensor) error {
	if len(b.Shape) != 2 {
		return fmt.Errorf("tensor: PackedB.Pack requires a 2-D operand, got %v", b.Shape)
	}
	k, n := b.Shape[0], b.Shape[1]
	p.packRows(k, n, func(kk int) []float32 { return b.Data[kk*n : (kk+1)*n] })
	return nil
}

// PackTransposed packs wᵀ for w (N×K) — the dense-layer case where the stored
// weight matrix is the transpose of the GEMM's right operand. Equivalent to
// Pack on a materialised transpose, without materialising it.
func (p *PackedB) PackTransposed(w *Tensor) error {
	if len(w.Shape) != 2 {
		return fmt.Errorf("tensor: PackedB.PackTransposed requires a 2-D operand, got %v", w.Shape)
	}
	n, k := w.Shape[0], w.Shape[1]
	panels := (n + gemmNR - 1) / gemmNR
	p.data = grow(p.data, panels*k*gemmNR)
	p.K, p.N = k, n
	for jp := 0; jp < panels; jp++ {
		j0 := jp * gemmNR
		dst := p.data[jp*k*gemmNR : (jp+1)*k*gemmNR]
		for kk := 0; kk < k; kk++ {
			for c := 0; c < gemmNR; c++ {
				if j := j0 + c; j < n {
					dst[kk*gemmNR+c] = w.Data[j*k+kk]
				} else {
					dst[kk*gemmNR+c] = 0
				}
			}
		}
	}
	return nil
}

// packRows is the shared row-streaming packer: row(kk) must return source row
// kk of the logical K×N operand.
func (p *PackedB) packRows(k, n int, row func(kk int) []float32) {
	panels := (n + gemmNR - 1) / gemmNR
	p.data = grow(p.data, panels*k*gemmNR)
	p.K, p.N = k, n
	full := n / gemmNR // panels with no column padding
	for kk := 0; kk < k; kk++ {
		src := row(kk)
		base := kk * gemmNR
		for jp := 0; jp < full; jp++ {
			d := p.data[jp*k*gemmNR+base : jp*k*gemmNR+base+gemmNR : jp*k*gemmNR+base+gemmNR]
			s := src[jp*gemmNR : jp*gemmNR+gemmNR : jp*gemmNR+gemmNR]
			d[0] = s[0]
			d[1] = s[1]
			d[2] = s[2]
			d[3] = s[3]
			d[4] = s[4]
			d[5] = s[5]
			d[6] = s[6]
			d[7] = s[7]
		}
		if full < panels {
			d := p.data[full*k*gemmNR+base : full*k*gemmNR+base+gemmNR]
			j0 := full * gemmNR
			for c := 0; c < gemmNR; c++ {
				if j := j0 + c; j < n {
					d[c] = src[j]
				} else {
					d[c] = 0
				}
			}
		}
	}
}

// GemmPacked computes C = A·B from pre-packed operands into the
// caller-provided C (M×N), overwriting its previous contents. Bitwise
// identical to MatMul(a, b).
func GemmPacked(c *Tensor, pa *PackedA, pb *PackedB) error {
	return GemmPackedParallel(c, pa, pb, 1)
}

// GemmPackedParallel is GemmPacked with column-tile parallelism: groups of
// gemmColTile B panels are fanned out over the deterministic runner. Tiles
// write disjoint output columns, so the result is bitwise identical for every
// worker count. workers <= 1 (or too few panels to tile) runs sequentially.
func GemmPackedParallel(c *Tensor, pa *PackedA, pb *PackedB, workers int) error {
	if err := checkGemmPacked(c, pa, pb); err != nil {
		return err
	}
	panels := (pb.N + gemmNR - 1) / gemmNR
	tiles := (panels + gemmColTile - 1) / gemmColTile
	if workers <= 1 || tiles < 2 {
		gemmPackedPanels(c, pa, pb, 0, panels)
		return nil
	}
	// The runner wants an RNG root; the tile body is deterministic and never
	// draws from it, so a fixed seed keeps the call site pure.
	_, err := parallel.Run(xrand.New(0), "gemm-packed", tiles, parallel.Options{Workers: workers},
		func(tile int, _ *xrand.Rand) (struct{}, error) {
			jp0 := tile * gemmColTile
			jp1 := jp0 + gemmColTile
			if jp1 > panels {
				jp1 = panels
			}
			gemmPackedPanels(c, pa, pb, jp0, jp1)
			return struct{}{}, nil
		})
	return err
}

func checkGemmPacked(c *Tensor, pa *PackedA, pb *PackedB) error {
	if pa.data == nil || pb.data == nil {
		return fmt.Errorf("tensor: GemmPacked on unpacked operands")
	}
	if pa.K != pb.K {
		return fmt.Errorf("tensor: GemmPacked inner dimensions %d and %d differ", pa.K, pb.K)
	}
	if len(c.Shape) != 2 || c.Shape[0] != pa.M || c.Shape[1] != pb.N {
		return fmt.Errorf("tensor: GemmPacked output shape %v, want (%d, %d)", c.Shape, pa.M, pb.N)
	}
	if overlaps(c.Data, pa.data) || overlaps(c.Data, pb.data) {
		return fmt.Errorf("tensor: GemmPacked output aliases a packed operand")
	}
	return nil
}

// gemmPackedPanels computes the output columns of B panels [jp0, jp1). The B
// panel of the current column block streams once while every A panel is
// revisited — A is the smaller, cache-resident operand on the inference
// shapes (a layer's packed weights).
func gemmPackedPanels(c *Tensor, pa *PackedA, pb *PackedB, jp0, jp1 int) {
	m, k, n := pa.M, pa.K, pb.N
	mPanels := (m + gemmMR - 1) / gemmMR
	for jp := jp0; jp < jp1; jp++ {
		bp := pb.data[jp*k*gemmNR : (jp+1)*k*gemmNR]
		j0 := jp * gemmNR
		nr := n - j0
		if nr > gemmNR {
			nr = gemmNR
		}
		for ip := 0; ip < mPanels; ip++ {
			ap := pa.data[ip*k*gemmMR : (ip+1)*k*gemmMR]
			i0 := ip * gemmMR
			mr := m - i0
			if mr > gemmMR {
				mr = gemmMR
			}
			if haveGemmAsm {
				if mr == gemmMR && nr == gemmNR {
					gemmMicroAsm(&c.Data[i0*n+j0], &ap[0], &bp[0], n, k)
					continue
				}
				// Edge tile: run the same kernel into a scratch tile,
				// then keep only the live lanes. The discarded lanes
				// are exactly the zero-padded panel rows/columns.
				var scratch [gemmMR * gemmNR]float32
				gemmMicroAsm(&scratch[0], &ap[0], &bp[0], gemmNR, k)
				for r := 0; r < mr; r++ {
					row := c.Data[(i0+r)*n+j0:]
					for cc := 0; cc < nr; cc++ {
						row[cc] = scratch[r*gemmNR+cc]
					}
				}
				continue
			}
			gemmMicroGo(c.Data, n, i0, j0, mr, nr, k, ap, bp)
		}
	}
}

// gemmMicroGo is the portable micro-kernel and the executable spec for the
// assembly one: an MR×NR accumulator tile where every element sums its K
// partial products in ascending k order (the bitwise-identity contract),
// storing only the mr×nr live lanes.
func gemmMicroGo(cdata []float32, ldc, i0, j0, mr, nr, kk int, ap, bp []float32) {
	var acc [gemmMR][gemmNR]float32
	for k := 0; k < kk; k++ {
		av := ap[k*gemmMR : k*gemmMR+gemmMR : k*gemmMR+gemmMR]
		bv := bp[k*gemmNR : k*gemmNR+gemmNR : k*gemmNR+gemmNR]
		for r := 0; r < gemmMR; r++ {
			a := av[r]
			row := &acc[r]
			for cc := 0; cc < gemmNR; cc++ {
				row[cc] += a * bv[cc]
			}
		}
	}
	// Dead lanes (zero-padded panel rows/columns) are dropped here, so
	// nothing they accumulated can reach the output.
	for r := 0; r < mr; r++ {
		row := cdata[(i0+r)*ldc+j0:]
		for cc := 0; cc < nr; cc++ {
			row[cc] = acc[r][cc]
		}
	}
}
