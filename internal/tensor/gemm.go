// Fused batched-GEMM kernels: blocked matrix multiplication writing into
// caller-provided output tensors, plus the batched im2col transform that lets
// a convolution layer process a whole (B, C, H, W) batch with a single GEMM.
//
// Determinism contract: every output element is a sum over the inner
// dimension accumulated in strictly ascending index order, exactly like the
// allocating MatMul* kernels. Blocking only changes the order in which
// *elements* are visited, never the order in which one element's partial
// products are added, so Gemm results are bitwise identical to MatMul results
// and GemmParallel results are bitwise identical for every worker count (row
// tiles write disjoint output rows; no reduction crosses a tile boundary).
// IEEE special values (NaN, ±Inf) therefore propagate identically on every
// path — there is no zero-skip shortcut that could mask 0·Inf = NaN.
package tensor

import (
	"fmt"

	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

const (
	// gemmRowTile is the height of one parallel row tile and the row block
	// of the sequential kernel. Tiles own disjoint rows of C, so the fan-out
	// needs no reduction and is worker-count-invariant by construction.
	gemmRowTile = 64
	// gemmKBlock bounds the inner-dimension block so the B-panel streamed by
	// the inner loop stays cache-resident across a row block.
	gemmKBlock = 256
)

// checkGemm validates one C = op(A)·op(B) call, returning the logical GEMM
// dimensions (m, n) after transposition. aInner and bInner are the Shape
// indices of the operand dimensions that must agree; aOuter and bOuter index
// the output dimensions.
func checkGemm(op string, c, a, b *Tensor, aOuter, aInner, bInner, bOuter int) (m, n int, err error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return 0, 0, fmt.Errorf("tensor: %s requires 2-D operands, got %v and %v", op, a.Shape, b.Shape)
	}
	if a.Shape[aInner] != b.Shape[bInner] {
		return 0, 0, fmt.Errorf("tensor: %s inner dimensions %d and %d differ",
			op, a.Shape[aInner], b.Shape[bInner])
	}
	m, n = a.Shape[aOuter], b.Shape[bOuter]
	if len(c.Shape) != 2 || c.Shape[0] != m || c.Shape[1] != n {
		return 0, 0, fmt.Errorf("tensor: %s output shape %v, want (%d, %d)", op, c.Shape, m, n)
	}
	// The kernels zero C before reading A and B, so an output aliasing an
	// input would silently corrupt the operand mid-multiply.
	if overlaps(c.Data, a.Data) {
		return 0, 0, fmt.Errorf("tensor: %s output aliases the left operand", op)
	}
	if overlaps(c.Data, b.Data) {
		return 0, 0, fmt.Errorf("tensor: %s output aliases the right operand", op)
	}
	return m, n, nil
}

// Gemm computes C = A·B for A (m×k) and B (k×n) into the caller-provided
// C (m×n), overwriting its previous contents. It is the reuse-friendly,
// bitwise-identical counterpart of MatMul.
func Gemm(c, a, b *Tensor) error {
	return GemmParallel(c, a, b, 1)
}

// GemmParallel is Gemm with optional row-tile parallelism: rows of C are
// split into gemmRowTile-high tiles fanned out over the deterministic
// parallel runner. workers <= 1 (or a matrix too small to tile) runs
// sequentially. The result is bitwise identical for every worker count.
func GemmParallel(c, a, b *Tensor, workers int) error {
	m, _, err := checkGemm("Gemm", c, a, b, 0, 1, 0, 1)
	if err != nil {
		return err
	}
	tiles := (m + gemmRowTile - 1) / gemmRowTile
	if workers <= 1 || tiles < 2 {
		gemmRows(c, a, b, 0, m)
		return nil
	}
	// The runner wants an RNG root; the tile body is deterministic and never
	// draws from it, so a fixed seed keeps the call site pure.
	_, err = parallel.Run(xrand.New(0), "gemm", tiles, parallel.Options{Workers: workers},
		func(tile int, _ *xrand.Rand) (struct{}, error) {
			i0 := tile * gemmRowTile
			i1 := i0 + gemmRowTile
			if i1 > m {
				i1 = m
			}
			gemmRows(c, a, b, i0, i1)
			return struct{}{}, nil
		})
	return err
}

// gemmRows computes rows [i0, i1) of C = A·B with ikj ordering blocked over
// the inner dimension. Each output element accumulates its k products in
// ascending k order, matching MatMul bit for bit.
func gemmRows(c, a, b *Tensor, i0, i1 int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := i0; i < i1; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
	}
	for k0 := 0; k0 < k; k0 += gemmKBlock {
		k1 := k0 + gemmKBlock
		if k1 > k {
			k1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for kk := k0; kk < k1; kk++ {
				av := arow[kk]
				brow := b.Data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// GemmTransA computes C = Aᵀ·B for A (k×m) and B (k×n) into the
// caller-provided C (m×n), bitwise identical to MatMulTransA.
func GemmTransA(c, a, b *Tensor) error {
	m, n, err := checkGemm("GemmTransA", c, a, b, 1, 0, 0, 1)
	if err != nil {
		return err
	}
	k := a.Shape[0]
	for i := range c.Data {
		c.Data[i] = 0
	}
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return nil
}

// GemmTransB computes C = A·Bᵀ for A (m×k) and B (n×k) into the
// caller-provided C (m×n), bitwise identical to MatMulTransB.
func GemmTransB(c, a, b *Tensor) error {
	m, n, err := checkGemm("GemmTransB", c, a, b, 0, 1, 1, 0)
	if err != nil {
		return err
	}
	k := a.Shape[1]
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var sum float32
			for kk, av := range arow {
				sum += av * brow[kk]
			}
			crow[j] = sum
		}
	}
	return nil
}

// Im2ColBatch unrolls a (B, C, H, W) batch into the caller-provided column
// matrix of shape (C*kh*kw, B*oh*ow): columns [b*oh*ow, (b+1)*oh*ow) hold
// exactly Im2Col(sample b), so one Gemm against the reshaped kernel computes
// the convolution of the whole batch. Padding positions are written as
// explicit zeros, so out may be a reused (dirty) buffer.
func Im2ColBatch(in *Tensor, kh, kw, stride, pad int, out *Tensor) error {
	if len(in.Shape) != 4 {
		return fmt.Errorf("tensor: Im2ColBatch requires (B,C,H,W) input, got %v", in.Shape)
	}
	bsz, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := Conv2DShape(h, w, kh, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: Im2ColBatch output is empty for input %v kernel %dx%d stride %d pad %d",
			in.Shape, kh, kw, stride, pad)
	}
	cols := bsz * oh * ow
	if len(out.Shape) != 2 || out.Shape[0] != c*kh*kw || out.Shape[1] != cols {
		return fmt.Errorf("tensor: Im2ColBatch output shape %v, want (%d, %d)", out.Shape, c*kh*kw, cols)
	}
	// The unroll overwrites out while gathering from in: aliasing would feed
	// already-rewritten values back into later columns.
	if overlaps(out.Data, in.Data) {
		return fmt.Errorf("tensor: Im2ColBatch output aliases the input")
	}
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				dst := out.Data[row*cols : (row+1)*cols]
				di := 0
				for b := 0; b < bsz; b++ {
					chBase := (b*c + ch) * h * w
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							for ox := 0; ox < ow; ox++ {
								dst[di] = 0
								di++
							}
							continue
						}
						rowBase := chBase + iy*w
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kx - pad
							if ix >= 0 && ix < w {
								dst[di] = in.Data[rowBase+ix]
							} else {
								dst[di] = 0
							}
							di++
						}
					}
				}
			}
		}
	}
	return nil
}
