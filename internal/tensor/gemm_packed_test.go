package tensor

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

func isNaN32(v float32) bool { return v != v }

// TestGemmPackedBitwiseMatchesMatMul: the packed register-blocked kernel must
// reproduce MatMul bit for bit across ragged shapes — m, n deliberately not
// multiples of the register block, n not a multiple of the column tile.
func TestGemmPackedBitwiseMatchesMatMul(t *testing.T) {
	r := xrand.New(11)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 4}, {4, 7, 4}, {5, 3, 9}, {16, 300, 7},
		{2, 17, 1030}, {32, 288, 513}, {65, 64, 33}, {7, 1, 258},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var pa PackedA
		var pb PackedB
		if err := pa.Pack(a); err != nil {
			t.Fatal(err)
		}
		if err := pb.Pack(b); err != nil {
			t.Fatal(err)
		}
		c := New(m, n)
		c.Fill(42) // dirty buffer: packed kernel must overwrite every element
		if err := GemmPacked(c, &pa, &pb); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "GemmPacked", c.Data, want.Data)
	}
}

// TestGemmPackedTransposedMatchesMatMulTransB: PackTransposed packs the dense
// layer's (out, in) weight matrix as the GEMM right operand, so
// x·Wᵀ computed via GemmPacked must match MatMulTransB(x, w) bit for bit.
func TestGemmPackedTransposedMatchesMatMulTransB(t *testing.T) {
	r := xrand.New(12)
	for _, dims := range [][3]int{
		{1, 1, 1}, {5, 7, 3}, {8, 288, 43}, {33, 64, 10},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		x, w := randomMat(r, m, k), randomMat(r, n, k)
		want, err := MatMulTransB(x, w)
		if err != nil {
			t.Fatal(err)
		}
		var pa PackedA
		var pb PackedB
		if err := pa.Pack(x); err != nil {
			t.Fatal(err)
		}
		if err := pb.PackTransposed(w); err != nil {
			t.Fatal(err)
		}
		c := New(m, n)
		if err := GemmPacked(c, &pa, &pb); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "GemmPacked/PackTransposed", c.Data, want.Data)
	}
}

// TestGemmPackedParallelWorkerInvariance: column tiles own disjoint output
// columns, so every worker count must produce bitwise-identical output.
func TestGemmPackedParallelWorkerInvariance(t *testing.T) {
	r := xrand.New(13)
	m, k, n := 17, 96, 1339 // > 5 column tiles, ragged everywhere
	a, b := randomMat(r, m, k), randomMat(r, k, n)
	var pa PackedA
	var pb PackedB
	if err := pa.Pack(a); err != nil {
		t.Fatal(err)
	}
	if err := pb.Pack(b); err != nil {
		t.Fatal(err)
	}
	want := New(m, n)
	if err := GemmPacked(want, &pa, &pb); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		c := New(m, n)
		c.Fill(-1)
		if err := GemmPackedParallel(c, &pa, &pb, workers); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "GemmPackedParallel", c.Data, want.Data)
	}
}

// TestGemmPackedNaNInfPropagation: special values must flow through the
// packed kernel exactly as through MatMul — in particular the zero padding of
// edge panels must never leak a 0·Inf = NaN into a live output lane.
func TestGemmPackedNaNInfPropagation(t *testing.T) {
	m, k, n := 5, 3, 6 // ragged: one padded row lane, two padded column lanes
	a, b := New(m, k), New(k, n)
	// Nonzero fills: a 0·Inf inside a live lane would make an INDEFINITE NaN
	// whose payload could then meet the injected NaN's payload in one add —
	// and when two *distinct* NaN payloads collide, x86 keeps whichever sits
	// in the destination register, which is codegen- not semantics-defined.
	// Single-NaN chains (all real inference data) are bitwise deterministic.
	for i := range a.Data {
		a.Data[i] = float32(i%5)*0.5 - 1.25
	}
	for i := range b.Data {
		b.Data[i] = float32(i%7)*0.5 - 1.75
	}
	a.Data[k*m-1] = float32(math.Inf(1)) // Inf in the last packed row lane
	b.Data[n-1] = float32(math.NaN())    // NaN in the last packed column lane
	b.Data[n] = float32(math.Inf(-1))
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var pa PackedA
	var pb PackedB
	if err := pa.Pack(a); err != nil {
		t.Fatal(err)
	}
	if err := pb.Pack(b); err != nil {
		t.Fatal(err)
	}
	c := New(m, n)
	if err := GemmPacked(c, &pa, &pb); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "GemmPacked NaN/Inf", c.Data, want.Data)
}

// TestPackedReuseAcrossShapes: repacking smaller operands into the same
// PackedA/PackedB and writing into a dirty output must not resurrect stale
// panel data from the earlier, larger packing.
func TestPackedReuseAcrossShapes(t *testing.T) {
	r := xrand.New(14)
	var pa PackedA
	var pb PackedB
	c := New(64, 600)
	for _, dims := range [][3]int{
		{33, 80, 523}, {6, 80, 523}, {6, 9, 14}, {5, 9, 14}, {33, 80, 523},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := pa.Pack(a); err != nil {
			t.Fatal(err)
		}
		if err := pb.Pack(b); err != nil {
			t.Fatal(err)
		}
		c.Shape = []int{m, n}
		c.Data = c.Data[:m*n]
		if err := GemmPacked(c, &pa, &pb); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "GemmPacked reuse", c.Data, want.Data)
	}
}

// TestGemmMicroAsmMatchesGo: the assembly kernel must be bitwise identical
// to its executable spec, gemmMicroGo, on full tiles — including when padded
// dead lanes of the panels carry specials.
func TestGemmMicroAsmMatchesGo(t *testing.T) {
	if !haveGemmAsm {
		t.Skip("no assembly kernel on this platform")
	}
	r := xrand.New(16)
	for _, k := range []int{1, 2, 7, 96, 288} {
		ap := make([]float32, k*gemmMR)
		bp := make([]float32, k*gemmNR)
		for i := range ap {
			ap[i] = r.Float32()*4 - 2
		}
		for i := range bp {
			bp[i] = r.Float32()*4 - 2
		}
		ap[r.Intn(len(ap))] = float32(math.Inf(-1))
		want := make([]float32, gemmMR*gemmNR)
		got := make([]float32, gemmMR*gemmNR)
		gemmMicroGo(want, gemmNR, 0, 0, gemmMR, gemmNR, k, ap, bp)
		gemmMicroAsm(&got[0], &ap[0], &bp[0], gemmNR, k)
		bitsEqual(t, "gemmMicroAsm", got, want)
	}
}

func TestGemmPackedShapeErrors(t *testing.T) {
	r := xrand.New(15)
	a, b := randomMat(r, 4, 6), randomMat(r, 6, 8)
	var pa PackedA
	var pb PackedB
	c := New(4, 8)
	if err := GemmPacked(c, &pa, &pb); err == nil {
		t.Fatal("GemmPacked accepted unpacked operands")
	}
	if err := pa.Pack(a); err != nil {
		t.Fatal(err)
	}
	if err := pb.Pack(b); err != nil {
		t.Fatal(err)
	}
	if err := GemmPacked(New(4, 7), &pa, &pb); err == nil {
		t.Fatal("GemmPacked accepted mismatched output shape")
	}
	var pbBad PackedB
	if err := pbBad.Pack(randomMat(r, 5, 8)); err != nil {
		t.Fatal(err)
	}
	if err := GemmPacked(c, &pa, &pbBad); err == nil {
		t.Fatal("GemmPacked accepted mismatched inner dimensions")
	}
	if err := pa.Pack(New(2, 3, 4)); err == nil {
		t.Fatal("PackedA.Pack accepted a 3-D tensor")
	}
	if err := pb.Pack(New(2, 3, 4)); err == nil {
		t.Fatal("PackedB.Pack accepted a 3-D tensor")
	}
	if err := pb.PackTransposed(New(2, 3, 4)); err == nil {
		t.Fatal("PackedB.PackTransposed accepted a 3-D tensor")
	}
}

// FuzzGemmPackedBitwise: for fuzzer-chosen ragged shapes and a value stream
// that includes specials, packed GEMM must match MatMul bit for bit at every
// worker count tried.
func FuzzGemmPackedBitwise(f *testing.F) {
	f.Add(uint16(3), uint16(5), uint16(4), uint64(1))
	f.Add(uint16(4), uint16(4), uint16(4), uint64(2))
	f.Add(uint16(13), uint16(1), uint16(259), uint64(3))
	f.Fuzz(func(t *testing.T, mm, kk, nn uint16, seed uint64) {
		m := int(mm%40) + 1
		k := int(kk%300) + 1
		n := int(nn%600) + 1
		r := xrand.New(seed)
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		// Sprinkle specials so padding bugs that mix lanes surface as NaNs.
		if m*k > 2 {
			a.Data[r.Intn(m*k)] = float32(math.Inf(1))
		}
		if k*n > 2 {
			b.Data[r.Intn(k*n)] = float32(math.NaN())
		}
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var pa PackedA
		var pb PackedB
		if err := pa.Pack(a); err != nil {
			t.Fatal(err)
		}
		if err := pb.Pack(b); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			c := New(m, n)
			c.Fill(7)
			if err := GemmPackedParallel(c, &pa, &pb, workers); err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				gb, wb := math.Float32bits(c.Data[i]), math.Float32bits(want.Data[i])
				if gb == wb {
					continue
				}
				// Two distinct NaN payloads colliding in one add resolve by
				// operand position (codegen-defined on x86), so NaN==NaN is
				// the strongest portable contract for fuzzer-built inputs;
				// all other values must match bit for bit.
				if isNaN32(c.Data[i]) && isNaN32(want.Data[i]) {
					continue
				}
				t.Fatalf("workers=%d element %d: got bits %#x want %#x", workers, i, gb, wb)
			}
		}
	})
}

// Kernel-level comparison on the alexnet conv3 shape at batch=32 — the
// multiply where BENCH_gemm.json showed the blocked kernel stalling.
func benchGemmShape(b *testing.B, packed bool) {
	r := xrand.New(9)
	m, k, n := 32, 288, 4608 // alexnet conv3 at batch=32
	x, y := randomMat(r, m, k), randomMat(r, k, n)
	c := New(m, n)
	if packed {
		var pa PackedA
		var pb PackedB
		if err := pa.Pack(x); err != nil { // weights: packed once, cached
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pb.Pack(y); err != nil { // activations: repacked per call
				b.Fatal(err)
			}
			if err := GemmPacked(c, &pa, &pb); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Gemm(c, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmAlexConv3(b *testing.B)       { benchGemmShape(b, false) }
func BenchmarkGemmPackedAlexConv3(b *testing.B) { benchGemmShape(b, true) }
