package tensor

import (
	"strings"
	"testing"
)

// The in-place kernels zero/overwrite C before reading A and B, so an output
// aliasing an input silently corrupts the multiply. These regression tests
// pin the checkGemm overlap rejection: on the pre-fix kernels every one of
// them fails, because the calls returned nil and produced garbage.

// aliasedPair returns a 4×4 operand and a 4×4 output whose backing arrays
// overlap by one element (the classic off-by-one suballocation bug).
func aliasedPair() (op, out *Tensor) {
	base := make([]float32, 2*16)
	for i := range base {
		base[i] = float32(i)
	}
	op = &Tensor{Shape: []int{4, 4}, Data: base[:16]}
	out = &Tensor{Shape: []int{4, 4}, Data: base[15 : 15+16]}
	return op, out
}

func TestGemmRejectsAliasedOutput(t *testing.T) {
	other := New(4, 4)
	for _, tc := range []struct {
		name string
		call func(c, op *Tensor) error
	}{
		{"Gemm/left", func(c, op *Tensor) error { return Gemm(c, op, other) }},
		{"Gemm/right", func(c, op *Tensor) error { return Gemm(c, other, op) }},
		{"GemmParallel", func(c, op *Tensor) error { return GemmParallel(c, op, other, 4) }},
		{"GemmTransA/left", func(c, op *Tensor) error { return GemmTransA(c, op, other) }},
		{"GemmTransA/right", func(c, op *Tensor) error { return GemmTransA(c, other, op) }},
		{"GemmTransB/left", func(c, op *Tensor) error { return GemmTransB(c, op, other) }},
		{"GemmTransB/right", func(c, op *Tensor) error { return GemmTransB(c, other, op) }},
	} {
		op, out := aliasedPair()
		err := tc.call(out, op)
		if err == nil {
			t.Fatalf("%s: accepted an output aliasing an input", tc.name)
		}
		if !strings.Contains(err.Error(), "aliases") {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
	}
}

// TestGemmFullAliasRejected: c == a (identical slice) is the most direct
// in-place misuse and must also be rejected.
func TestGemmFullAliasRejected(t *testing.T) {
	a := New(3, 3)
	b := New(3, 3)
	c := &Tensor{Shape: []int{3, 3}, Data: a.Data}
	if err := Gemm(c, a, b); err == nil {
		t.Fatal("Gemm accepted c sharing a's backing array")
	}
}

// TestGemmDisjointSubslicesAllowed: arena-style suballocation hands out
// disjoint windows of one backing array — that is not aliasing and must keep
// working bit for bit.
func TestGemmDisjointSubslicesAllowed(t *testing.T) {
	base := make([]float32, 3*16)
	a := &Tensor{Shape: []int{4, 4}, Data: base[0:16]}
	b := &Tensor{Shape: []int{4, 4}, Data: base[16:32]}
	c := &Tensor{Shape: []int{4, 4}, Data: base[32:48]}
	for i := 0; i < 16; i++ {
		a.Data[i] = float32(i%5) - 2
		b.Data[i] = float32(i%3) - 1
	}
	if err := Gemm(c, a, b); err != nil {
		t.Fatalf("Gemm rejected disjoint sub-slices: %v", err)
	}
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "disjoint sub-slices", c.Data, want.Data)
}

func TestIm2ColBatchRejectsAliasedOutput(t *testing.T) {
	oh, ow := Conv2DShape(4, 4, 3, 3, 1, 1)
	base := make([]float32, 64+2*3*3*2*oh*ow)
	in := &Tensor{Shape: []int{2, 2, 4, 4}, Data: base[:64]}
	out := &Tensor{Shape: []int{2 * 3 * 3, 2 * oh * ow}, Data: base[32 : 32+2*3*3*2*oh*ow]}
	if err := Im2ColBatch(in, 3, 3, 1, 1, out); err == nil {
		t.Fatal("Im2ColBatch accepted an output aliasing the input")
	}
}

func TestGemmPackedRejectsAliasedOutput(t *testing.T) {
	a := New(4, 4)
	b := New(4, 8)
	var pa PackedA
	var pb PackedB
	if err := pa.Pack(a); err != nil {
		t.Fatal(err)
	}
	if err := pb.Pack(b); err != nil {
		t.Fatal(err)
	}
	c := &Tensor{Shape: []int{4, 8}, Data: pb.data[:32]}
	if err := GemmPacked(c, &pa, &pb); err == nil {
		t.Fatal("GemmPacked accepted an output aliasing a packed panel")
	}
}
