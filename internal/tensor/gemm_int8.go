// Int8 quantized GEMM: symmetric per-tensor quantization into packed int16
// panels (int8-range values widened so the SIMD kernel can multiply-add
// pairs directly) with exact int32 accumulation.
//
// Determinism contract — stronger than the float path's: integer
// accumulation is associative, so the quantized result is identical for
// every kernel (assembly or portable), every worker count, and every
// platform; there is no rounding order to preserve. The only float steps are
// quantization (v·inv, round half away from zero, clamp to ±127 — one
// float32 multiply with a fixed rule) and the final dequantize
// (float32(acc)·scale), both elementwise and order-free.
//
// Overflow safety: |q| ≤ 127, so one k-pair contributes ≤ 2·127² = 32258 and
// an int32 accumulator holds K up to ~66k k-pairs without overflow — three
// orders of magnitude above any model shape here. Dequantization is exact
// for |acc| ≤ 2²⁴ (float32 mantissa), far above the logits these layers see.
//
// Layout: PackedAInt8 panels are gemmMR rows × k-pairs, each (row, pair)
// slot holding two adjacent k values — the kernel broadcasts one slot and
// PMADDWD-multiplies it against a PackedBInt8 panel slot of gemmNR columns ×
// the same k-pair, interleaved [k0c0 k1c0 k0c1 k1c1 …]. Odd K pads the final
// pair with zero, which contributes exactly 0.
package tensor

import (
	"fmt"
	"math"

	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

// Int8Scale carries one symmetric quantization scale: q = round(v·Inv)
// clamped to ±127, v ≈ float32(q)·Scale. Inv is the defining parameter;
// Scale is its reciprocal kept for exact-once dequantization.
type Int8Scale struct {
	Scale float32
	Inv   float32
}

// Int8ScaleFor builds the symmetric scale that maps ±maxAbs to ±127.
// maxAbs <= 0 (all-zero calibration) degrades to the identity scale.
func Int8ScaleFor(maxAbs float32) Int8Scale {
	if !(maxAbs > 0) {
		return Int8Scale{Scale: 1, Inv: 1}
	}
	s := maxAbs / 127
	return Int8Scale{Scale: s, Inv: 1 / s}
}

// QuantizeInt8 quantizes one value: clamp(v·inv) to [-127, 127], then round
// half to even. The clamp-then-convert order and tie rule mirror the SIMD
// packer exactly (MINPS/MAXPS then CVTPS2DQ under the default round-nearest
// mode), so the portable and assembly paths quantize every input — including
// NaN and ±Inf, which the MINPS clamp maps to +127 and the MAXPS clamp to
// -127 respectively — to the same integer on every platform.
func QuantizeInt8(v, inv float32) int8 {
	f := v * inv
	if !(f < 127) { // NaN and +big land on the upper clamp, like MINPS
		f = 127
	}
	if !(f > -127) {
		f = -127
	}
	return int8(int32(math.RoundToEven(float64(f))))
}

// MaxAbs returns the largest absolute value in x, ignoring NaNs (a NaN
// calibration sample must not poison the scale).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// PackedAInt8 is the quantized left operand: gemmMR-row panels over k-pairs,
// each slot two adjacent k values of one row.
type PackedAInt8 struct {
	M, K int
	data []int16
}

// PackedBInt8 is the quantized right operand: gemmNR-column panels over
// k-pairs, interleaved [k0c0 k1c0 k0c1 k1c1 …] per pair.
type PackedBInt8 struct {
	K, N int
	data []int16
}

func growInt16(buf []int16, n int) []int16 {
	if cap(buf) < n {
		return make([]int16, n)
	}
	return buf[:n]
}

// kpairs rounds the inner dimension up to whole k-pairs.
func kpairs(k int) int { return (k + 1) / 2 }

// Pack quantizes and packs a (M×K) with q = round(v·inv) clamped to ±127.
func (p *PackedAInt8) Pack(a *Tensor, inv float32) error {
	if len(a.Shape) != 2 {
		return fmt.Errorf("tensor: PackedAInt8.Pack requires a 2-D operand, got %v", a.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	panels := (m + gemmMR - 1) / gemmMR
	kp := kpairs(k)
	p.data = growInt16(p.data, panels*kp*2*gemmMR)
	p.M, p.K = m, k
	for ip := 0; ip < panels; ip++ {
		i0 := ip * gemmMR
		dst := p.data[ip*kp*2*gemmMR:]
		for pair := 0; pair < kp; pair++ {
			for r := 0; r < gemmMR; r++ {
				s := dst[(pair*gemmMR+r)*2 : (pair*gemmMR+r)*2+2 : (pair*gemmMR+r)*2+2]
				i := i0 + r
				if i >= m {
					s[0], s[1] = 0, 0
					continue
				}
				row := a.Data[i*k : (i+1)*k]
				s[0] = int16(QuantizeInt8(row[2*pair], inv))
				if 2*pair+1 < k {
					s[1] = int16(QuantizeInt8(row[2*pair+1], inv))
				} else {
					s[1] = 0
				}
			}
		}
	}
	return nil
}

// Pack quantizes and packs b (K×N).
func (p *PackedBInt8) Pack(b *Tensor, inv float32) error {
	if len(b.Shape) != 2 {
		return fmt.Errorf("tensor: PackedBInt8.Pack requires a 2-D operand, got %v", b.Shape)
	}
	k, n := b.Shape[0], b.Shape[1]
	p.packRows(k, n, inv, func(kk int) []float32 { return b.Data[kk*n : (kk+1)*n] })
	return nil
}

// PackTransposed quantizes and packs wᵀ for w (N×K) — the dense-layer weight
// case, mirroring PackedB.PackTransposed.
func (p *PackedBInt8) PackTransposed(w *Tensor, inv float32) error {
	if len(w.Shape) != 2 {
		return fmt.Errorf("tensor: PackedBInt8.PackTransposed requires a 2-D operand, got %v", w.Shape)
	}
	n, k := w.Shape[0], w.Shape[1]
	panels := (n + gemmNR - 1) / gemmNR
	kp := kpairs(k)
	p.data = growInt16(p.data, panels*kp*2*gemmNR)
	p.K, p.N = k, n
	for jp := 0; jp < panels; jp++ {
		j0 := jp * gemmNR
		dst := p.data[jp*kp*2*gemmNR:]
		for pair := 0; pair < kp; pair++ {
			for c := 0; c < gemmNR; c++ {
				s := dst[(pair*gemmNR+c)*2 : (pair*gemmNR+c)*2+2 : (pair*gemmNR+c)*2+2]
				j := j0 + c
				if j >= n {
					s[0], s[1] = 0, 0
					continue
				}
				row := w.Data[j*k : (j+1)*k]
				s[0] = int16(QuantizeInt8(row[2*pair], inv))
				if 2*pair+1 < k {
					s[1] = int16(QuantizeInt8(row[2*pair+1], inv))
				} else {
					s[1] = 0
				}
			}
		}
	}
	return nil
}

func (p *PackedBInt8) packRows(k, n int, inv float32, row func(kk int) []float32) {
	panels := (n + gemmNR - 1) / gemmNR
	kp := kpairs(k)
	stride := kp * 2 * gemmNR // int16s per panel
	p.data = growInt16(p.data, panels*stride)
	p.K, p.N = k, n
	full := n / gemmNR // panels with no column padding
	for pair := 0; pair < kp; pair++ {
		r0 := row(2 * pair)
		var r1 []float32
		if 2*pair+1 < k {
			r1 = row(2*pair + 1)
		}
		base := pair * gemmNR * 2
		jp := 0
		if haveGemmAsm && r1 != nil && full > 0 {
			// SIMD fast path: quantize, clamp, convert and pair-interleave
			// one k-pair across all full panels in a single sweep.
			quantPackPairAsm(&p.data[base], &r0[0], &r1[0], inv, full, stride)
			jp = full
		}
		for ; jp < panels; jp++ {
			dst := p.data[jp*stride+base : jp*stride+base+2*gemmNR]
			j0 := jp * gemmNR
			for c := 0; c < gemmNR; c++ {
				j := j0 + c
				if j >= n {
					dst[2*c], dst[2*c+1] = 0, 0
					continue
				}
				dst[2*c] = int16(QuantizeInt8(r0[j], inv))
				if r1 != nil {
					dst[2*c+1] = int16(QuantizeInt8(r1[j], inv))
				} else {
					dst[2*c+1] = 0
				}
			}
		}
	}
}

// GemmInt8Packed computes the exact int32 product C = Aq·Bq of the quantized
// operands into c (row-major M×N). Results are identical on every platform,
// kernel and worker count — integer accumulation has no rounding order.
func GemmInt8Packed(c []int32, pa *PackedAInt8, pb *PackedBInt8) error {
	return GemmInt8PackedParallel(c, pa, pb, 1)
}

// GemmInt8PackedParallel is GemmInt8Packed with the same column-tile fan-out
// as GemmPackedParallel.
func GemmInt8PackedParallel(c []int32, pa *PackedAInt8, pb *PackedBInt8, workers int) error {
	if pa.data == nil || pb.data == nil {
		return fmt.Errorf("tensor: GemmInt8Packed on unpacked operands")
	}
	if pa.K != pb.K {
		return fmt.Errorf("tensor: GemmInt8Packed inner dimensions %d and %d differ", pa.K, pb.K)
	}
	if len(c) != pa.M*pb.N {
		return fmt.Errorf("tensor: GemmInt8Packed output length %d, want %d", len(c), pa.M*pb.N)
	}
	panels := (pb.N + gemmNR - 1) / gemmNR
	tiles := (panels + gemmColTile - 1) / gemmColTile
	if workers <= 1 || tiles < 2 {
		gemmInt8Panels(c, pa, pb, 0, panels)
		return nil
	}
	_, err := parallel.Run(xrand.New(0), "gemm-int8", tiles, parallel.Options{Workers: workers},
		func(tile int, _ *xrand.Rand) (struct{}, error) {
			jp0 := tile * gemmColTile
			jp1 := jp0 + gemmColTile
			if jp1 > panels {
				jp1 = panels
			}
			gemmInt8Panels(c, pa, pb, jp0, jp1)
			return struct{}{}, nil
		})
	return err
}

func gemmInt8Panels(c []int32, pa *PackedAInt8, pb *PackedBInt8, jp0, jp1 int) {
	m, n := pa.M, pb.N
	kp := kpairs(pa.K)
	mPanels := (m + gemmMR - 1) / gemmMR
	for jp := jp0; jp < jp1; jp++ {
		bp := pb.data[jp*kp*2*gemmNR : (jp+1)*kp*2*gemmNR]
		j0 := jp * gemmNR
		nr := n - j0
		if nr > gemmNR {
			nr = gemmNR
		}
		for ip := 0; ip < mPanels; ip++ {
			ap := pa.data[ip*kp*2*gemmMR : (ip+1)*kp*2*gemmMR]
			i0 := ip * gemmMR
			mr := m - i0
			if mr > gemmMR {
				mr = gemmMR
			}
			if haveGemmAsm {
				if mr == gemmMR && nr == gemmNR {
					gemmInt8MicroAsm(&c[i0*n+j0], &ap[0], &bp[0], n, kp)
					continue
				}
				var scratch [gemmMR * gemmNR]int32
				gemmInt8MicroAsm(&scratch[0], &ap[0], &bp[0], gemmNR, kp)
				for r := 0; r < mr; r++ {
					row := c[(i0+r)*n+j0:]
					for cc := 0; cc < nr; cc++ {
						row[cc] = scratch[r*gemmNR+cc]
					}
				}
				continue
			}
			gemmInt8MicroGo(c, n, i0, j0, mr, nr, kp, ap, bp)
		}
	}
}

// gemmInt8MicroGo is the portable micro-kernel and executable spec for the
// assembly one: exact int32 accumulation over k-pairs.
func gemmInt8MicroGo(c []int32, ldc, i0, j0, mr, nr, kp int, ap, bp []int16) {
	var acc [gemmMR][gemmNR]int32
	for pair := 0; pair < kp; pair++ {
		av := ap[pair*gemmMR*2 : (pair+1)*gemmMR*2]
		bv := bp[pair*gemmNR*2 : (pair+1)*gemmNR*2]
		for r := 0; r < gemmMR; r++ {
			a0 := int32(av[2*r])
			a1 := int32(av[2*r+1])
			row := &acc[r]
			for cc := 0; cc < gemmNR; cc++ {
				row[cc] += a0*int32(bv[2*cc]) + a1*int32(bv[2*cc+1])
			}
		}
	}
	for r := 0; r < mr; r++ {
		row := c[(i0+r)*ldc+j0:]
		for cc := 0; cc < nr; cc++ {
			row[cc] = acc[r][cc]
		}
	}
}

// DequantInt32 rescales the exact int32 accumulators back to float32:
// dst[i] = float32(src[i])·scale, elementwise and order-free.
func DequantInt32(dst []float32, src []int32, scale float32) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = float32(src[i]) * scale
	}
}
