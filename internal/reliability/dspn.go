package reliability

import (
	"fmt"

	"mvml/internal/petri"
	"mvml/internal/stats"
	"mvml/internal/xrand"
)

// Model is a DSPN reliability model of an n-version ML system: the net of
// the paper's Fig. 2 (reactive rejuvenation only) or Fig. 3 (with the
// time-triggered proactive rejuvenation clock).
type Model struct {
	Net       *petri.Net
	N         int
	Params    Params
	Proactive bool

	// Module places (always present).
	Pmh, Pmc, Pmf *petri.Place
	// Proactive-rejuvenation places (nil without proactive rejuvenation).
	Pmr, Prc, Ptr, Pac *petri.Place
}

// smallWeight is the epsilon the paper's Table I uses so that immediate
// conflict weights never vanish.
const smallWeight = 0.00001

// NewModel builds the DSPN for an n-version system (1 <= n <= 3). With
// proactive=false it is the net of Fig. 2; with proactive=true the
// rejuvenation clock and trigger of Fig. 3 are added, with the guard
// functions g1–g3 and weight functions w1/w2 of Table I.
func NewModel(n int, params Params, proactive bool) (*Model, error) {
	if n < 1 || n > 3 {
		return nil, fmt.Errorf("reliability: model supports 1..3 modules, got %d", n)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	name := fmt.Sprintf("%d-version", n)
	if proactive {
		name += "-proactive"
	}
	net := petri.NewNet(name)
	m := &Model{Net: net, N: n, Params: params, Proactive: proactive}

	m.Pmh = net.AddPlace("Pmh", n)
	m.Pmc = net.AddPlace("Pmc", 0)
	m.Pmf = net.AddPlace("Pmf", 0)

	// Tc: a healthy module is compromised (stays responsive).
	tc := net.AddExponential("Tc", params.MeanTimeToCompromise)
	net.AddInput(m.Pmh, tc, 1)
	net.AddOutput(tc, m.Pmc, 1)

	// Tf: a compromised module crashes (becomes non-functional).
	tf := net.AddExponential("Tf", params.MeanTimeToFailure)
	net.AddInput(m.Pmc, tf, 1)
	net.AddOutput(tf, m.Pmf, 1)

	// Tr: reactive rejuvenation restores a non-functional module.
	tr := net.AddExponential("Tr", params.MeanReactiveRejuvenation)
	net.AddInput(m.Pmf, tr, 1)
	net.AddOutput(tr, m.Pmh, 1)

	if !proactive {
		return m, nil
	}

	m.Pmr = net.AddPlace("Pmr", 0)
	m.Prc = net.AddPlace("Prc", 1)
	m.Ptr = net.AddPlace("Ptr", 0)
	m.Pac = net.AddPlace("Pac", 0)

	pmh, pmc, pmf := m.Pmh, m.Pmc, m.Pmf
	pmr, prc, ptr, pac := m.Pmr, m.Prc, m.Ptr, m.Pac

	// Trc: the deterministic rejuvenation clock fires every 1/γ.
	trc := net.AddDeterministic("Trc", params.RejuvenationInterval)
	net.AddInput(prc, trc, 1)
	net.AddOutput(trc, ptr, 1)

	// Tac: registers a rejuvenation trigger (guard g1: #Ptr = 1). It does
	// not consume the clock token; Trt (below, higher priority) returns
	// the token to Prc as soon as a trigger or an ongoing rejuvenation
	// exists, which also stops Tac from firing twice for one expiry.
	tac := net.AddImmediate("Tac")
	tac.SetGuard(func(mk petri.Marking) bool { return mk.Count(ptr) == 1 })
	net.AddOutput(tac, pac, 1)

	// Trt: resets the clock (guard g3: #Pmr + #Pac > 0).
	trt := net.AddImmediate("Trt").SetPriority(10)
	trt.SetGuard(func(mk petri.Marking) bool { return mk.Count(pmr)+mk.Count(pac) > 0 })
	net.AddInput(ptr, trt, 1)
	net.AddOutput(trt, prc, 1)

	// Trj1: proactively rejuvenate a compromised module; Trj2: a healthy
	// one. Guard g2 ((#Pmf + #Pmr) < 1) gives reactive rejuvenation
	// precedence and serialises proactive rejuvenations; the inhibitor
	// arcs from Pmf model the same precedence structurally.
	g2 := func(mk petri.Marking) bool { return mk.Count(pmf)+mk.Count(pmr) < 1 }

	trj1 := net.AddImmediate("Trj1")
	trj1.SetGuard(g2)
	trj1.SetWeight(func(mk petri.Marking) float64 {
		c, h := mk.Count(pmc), mk.Count(pmh)
		if c == 0 {
			return smallWeight
		}
		return float64(c) / float64(c+h)
	})
	net.AddInput(pac, trj1, 1)
	net.AddInput(pmc, trj1, 1)
	net.AddOutput(trj1, pmr, 1)
	net.AddInhibitor(pmf, trj1, 1)

	trj2 := net.AddImmediate("Trj2")
	trj2.SetGuard(g2)
	trj2.SetWeight(func(mk petri.Marking) float64 {
		c, h := mk.Count(pmc), mk.Count(pmh)
		if h == 0 {
			return smallWeight
		}
		return float64(h) / float64(c+h)
	})
	net.AddInput(pac, trj2, 1)
	net.AddInput(pmh, trj2, 1)
	net.AddOutput(trj2, pmr, 1)
	net.AddInhibitor(pmf, trj2, 1)

	// Trj: the proactive rejuvenation itself takes 1/μr and returns the
	// module to the healthy state.
	trj := net.AddExponential("Trj", params.MeanProactiveRejuvenation)
	net.AddInput(pmr, trj, 1)
	net.AddOutput(trj, pmh, 1)

	return m, nil
}

// StateOf maps a marking to the (i, j, k) system state. Modules being
// proactively rejuvenated (Pmr) count as non-functional, as the paper notes
// that a module cannot process sensor data while rejuvenating.
func (m *Model) StateOf(mk petri.Marking) State {
	i := mk.Count(m.Pmh)
	j := mk.Count(m.Pmc)
	return State{Healthy: i, Compromised: j, NonFunctional: m.N - i - j}
}

// Reward returns the reliability reward function over markings, for use
// with the petri solvers.
func (m *Model) Reward() func(petri.Marking) float64 {
	return func(mk petri.Marking) float64 {
		r, err := m.Params.StateReliability(m.StateOf(mk))
		if err != nil {
			return 0
		}
		return r
	}
}

// Result is a solved reliability model.
type Result struct {
	// Expected is E[R_sys] (Eq. 3).
	Expected float64
	// CI is the batch-means confidence interval (simulation only;
	// zero-valued for exact solutions).
	CI stats.Interval
	// StateProbs is the steady-state probability of each (i, j, k) state.
	StateProbs map[State]float64
	// Method records how the result was produced.
	Method string
}

// SolveExact computes the exact steady-state reliability via the embedded
// CTMC. It only applies to models without proactive rejuvenation (the
// deterministic clock makes the proactive net a true DSPN); use
// SolveSimulation or SolveErlang there.
func (m *Model) SolveExact() (*Result, error) {
	sol, err := petri.SolveCTMC(m.Net)
	if err != nil {
		return nil, fmt.Errorf("reliability: exact solve of %s: %w", m.Net.Name(), err)
	}
	return m.resultFromStateProbs(sol, "ctmc")
}

// SolveErlang approximates the deterministic rejuvenation clock with a
// k-stage Erlang chain and solves the resulting CTMC exactly. Larger stage
// counts approach the DSPN solution.
func (m *Model) SolveErlang(stages int) (*Result, error) {
	approx, err := petri.ErlangApproximation(m.Net, stages)
	if err != nil {
		return nil, err
	}
	sol, err := petri.SolveCTMC(approx)
	if err != nil {
		return nil, fmt.Errorf("reliability: Erlang solve of %s: %w", m.Net.Name(), err)
	}
	res, err := m.resultFromStateProbs(sol, fmt.Sprintf("erlang-%d", stages))
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (m *Model) resultFromStateProbs(sol *petri.CTMCResult, method string) (*Result, error) {
	res := &Result{StateProbs: make(map[State]float64), Method: method}
	for i, mk := range sol.States {
		res.StateProbs[m.StateOf(mk)] += sol.Pi[i]
	}
	expected, err := ExpectedReliability(res.StateProbs, m.Params)
	if err != nil {
		return nil, err
	}
	res.Expected = expected
	return res, nil
}

// SolveSimulation estimates the steady-state reliability by Monte-Carlo
// simulation of the DSPN. It handles every model variant, including the
// deterministic proactive-rejuvenation clock.
func (m *Model) SolveSimulation(cfg petri.SimConfig, rng *xrand.Rand) (*Result, error) {
	sim, err := petri.Simulate(m.Net, cfg, m.Reward(), rng)
	if err != nil {
		return nil, fmt.Errorf("reliability: simulating %s: %w", m.Net.Name(), err)
	}
	res := &Result{
		Expected:   sim.Reward,
		CI:         sim.RewardCI,
		StateProbs: make(map[State]float64),
		Method:     "simulation",
	}
	for key, frac := range sim.Occupancy {
		res.StateProbs[m.StateOf(sim.MarkingOf[key])] += frac
	}
	return res, nil
}

// TransientReliability estimates the expected output reliability E[R(t)]
// at the given mission times, starting from the all-healthy initial state —
// the mission-time complement to the steady-state Eq. 3 analysis.
// Replications fan out over `workers` goroutines (<= 0 = GOMAXPROCS); the
// estimates are identical for every worker count.
func (m *Model) TransientReliability(times []float64, replications, workers int, rng *xrand.Rand) ([]petri.TransientPoint, error) {
	cfg := petri.TransientConfig{Times: times, Replications: replications, Workers: workers}
	points, err := petri.TransientRewards(m.Net, cfg, m.Reward(), rng)
	if err != nil {
		return nil, fmt.Errorf("reliability: transient analysis of %s: %w", m.Net.Name(), err)
	}
	return points, nil
}

// DefaultSimConfig returns the simulation settings the experiment harness
// uses: long enough for tight CIs on the paper's parameter magnitudes.
func DefaultSimConfig() petri.SimConfig {
	return petri.SimConfig{Horizon: 5e6, Warmup: 5e4}
}
