package reliability

import (
	"math"
	"testing"

	"mvml/internal/petri"
	"mvml/internal/xrand"
)

// TestTableVWithoutRejuvenationExact reproduces the "w/o rej." column of the
// paper's Table V with the exact CTMC solver: 0.848211 / 0.943875 /
// 0.903190 for the single-, two- and three-version systems.
func TestTableVWithoutRejuvenationExact(t *testing.T) {
	pr := DefaultParams()
	want := map[int]float64{1: 0.848211, 2: 0.943875, 3: 0.903190}
	for n := 1; n <= 3; n++ {
		model, err := NewModel(n, pr, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(res.Expected, want[n], 2e-5) {
			t.Errorf("%d-version w/o rejuvenation: %.6f, want %.6f (paper Table V)",
				n, res.Expected, want[n])
		}
		// State probabilities are a distribution.
		var mass float64
		for _, p := range res.StateProbs {
			mass += p
		}
		if !almostEqual(mass, 1, 1e-9) {
			t.Errorf("%d-version state probabilities sum to %v", n, mass)
		}
	}
}

// TestTableVWithRejuvenationSimulation reproduces the "w/ rej." column of
// Table V by DSPN simulation: 0.920217 / 0.967152 / 0.952998. The tolerance
// accommodates Monte-Carlo noise.
func TestTableVWithRejuvenationSimulation(t *testing.T) {
	pr := DefaultParams()
	want := map[int]float64{1: 0.920217, 2: 0.967152, 3: 0.952998}
	rng := xrand.New(1)
	for n := 1; n <= 3; n++ {
		model, err := NewModel(n, pr, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.SolveSimulation(DefaultSimConfig(), rng.Split("tableV", uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Expected-want[n]) > 0.01 {
			t.Errorf("%d-version w/ rejuvenation: %.6f, want %.6f ± 0.01 (paper Table V)",
				n, res.Expected, want[n])
		}
	}
}

// TestErlangCrossValidatesSimulation solves the proactive DSPN both by
// simulation and by Erlang phase-type approximation; the two independent
// methods must agree.
func TestErlangCrossValidatesSimulation(t *testing.T) {
	pr := DefaultParams()
	model, err := NewModel(3, pr, true)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := model.SolveSimulation(DefaultSimConfig(), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	erl, err := model.SolveErlang(20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.Expected-erl.Expected) > 0.01 {
		t.Fatalf("simulation %.6f and Erlang %.6f disagree", sim.Expected, erl.Expected)
	}
}

func TestSimulationMatchesExactWithoutProactive(t *testing.T) {
	pr := DefaultParams()
	for n := 1; n <= 3; n++ {
		model, err := NewModel(n, pr, false)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := model.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := model.SolveSimulation(petri.SimConfig{Horizon: 2e6, Warmup: 1e4}, xrand.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.Expected-sim.Expected) > 0.01 {
			t.Errorf("%d-version: exact %.6f vs simulated %.6f", n, exact.Expected, sim.Expected)
		}
	}
}

func TestProactiveRejuvenationImprovesReliability(t *testing.T) {
	// The paper's headline: proactive rejuvenation helps every
	// configuration at the default parameters.
	pr := DefaultParams()
	rng := xrand.New(7)
	for n := 1; n <= 3; n++ {
		without, err := NewModel(n, pr, false)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := without.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		with, err := NewModel(n, pr, true)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := with.SolveSimulation(DefaultSimConfig(), rng.Split("improve", uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if sim.Expected <= exact.Expected {
			t.Errorf("%d-version: rejuvenation did not help (%.6f vs %.6f)",
				n, sim.Expected, exact.Expected)
		}
	}
}

func TestTwoVersionBeatsThreeVersion(t *testing.T) {
	// Because the 2-version voter may safely skip on disagreement, the
	// paper finds 2v > 3v with and without rejuvenation (Table V).
	pr := DefaultParams()
	two, err := NewModel(2, pr, false)
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewModel(3, pr, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := two.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := three.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Expected <= r3.Expected {
		t.Fatalf("2-version (%.6f) should outperform 3-version (%.6f)", r2.Expected, r3.Expected)
	}
}

func TestNewModelValidation(t *testing.T) {
	pr := DefaultParams()
	if _, err := NewModel(0, pr, false); err == nil {
		t.Fatal("expected error for 0 modules")
	}
	if _, err := NewModel(4, pr, true); err == nil {
		t.Fatal("expected error for 4 modules")
	}
	bad := pr
	bad.MeanTimeToFailure = -1
	if _, err := NewModel(3, bad, false); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestSolveExactRejectsProactive(t *testing.T) {
	model, err := NewModel(3, DefaultParams(), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.SolveExact(); err == nil {
		t.Fatal("expected rejection: proactive model has a deterministic transition")
	}
}

func TestStateOfCountsRejuvenatingAsNonFunctional(t *testing.T) {
	model, err := NewModel(3, DefaultParams(), true)
	if err != nil {
		t.Fatal(err)
	}
	mk := model.Net.InitialMarking()
	mk[model.Pmh.Index()] = 1
	mk[model.Pmc.Index()] = 1
	mk[model.Pmr.Index()] = 1
	s := model.StateOf(mk)
	if s != (State{Healthy: 1, Compromised: 1, NonFunctional: 1}) {
		t.Fatalf("state %v, want (1,1,1)", s)
	}
}

func TestShorterIntervalIncreasesReliability(t *testing.T) {
	// Fig. 4(a): more frequent rejuvenation keeps reliability higher.
	pr := DefaultParams()
	rng := xrand.New(11)
	fast := pr
	fast.RejuvenationInterval = 60
	slow := pr
	slow.RejuvenationInterval = 2500

	solve := func(p Params, tag string) float64 {
		model, err := NewModel(3, p, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.SolveSimulation(DefaultSimConfig(), rng.Split(tag, 0))
		if err != nil {
			t.Fatal(err)
		}
		return res.Expected
	}
	rFast := solve(fast, "fast")
	rSlow := solve(slow, "slow")
	if rFast <= rSlow {
		t.Fatalf("interval 60s (%.6f) should beat 2500s (%.6f)", rFast, rSlow)
	}
}

func BenchmarkSolveExact3v(b *testing.B) {
	model, err := NewModel(3, DefaultParams(), false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := model.SolveExact(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate3vProactive(b *testing.B) {
	model, err := NewModel(3, DefaultParams(), true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := petri.SimConfig{Horizon: 1e5, Warmup: 1e3}
	for i := 0; i < b.N; i++ {
		if _, err := model.SolveSimulation(cfg, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTransientReliabilityCurve: mission-time reliability starts at
// R(3,0,0), decays toward the steady state, and the rejuvenated system
// dominates the non-rejuvenated one at long mission times.
func TestTransientReliabilityCurve(t *testing.T) {
	pr := DefaultParams()
	times := []float64{1, 1523, 6092}

	with, err := NewModel(3, pr, true)
	if err != nil {
		t.Fatal(err)
	}
	withPts, err := with.TransientReliability(times, 1200, 0, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewModel(3, pr, false)
	if err != nil {
		t.Fatal(err)
	}
	withoutPts, err := without.TransientReliability(times, 1200, 0, xrand.New(22))
	if err != nil {
		t.Fatal(err)
	}

	r300, err := pr.StateReliability(State{Healthy: 3})
	if err != nil {
		t.Fatal(err)
	}
	// At t ≈ 0 both systems are all-healthy.
	if math.Abs(withPts[0].Reward.Mean-r300) > 0.005 {
		t.Errorf("E[R(1)] = %.4f, want ≈ R(3,0,0) = %.4f", withPts[0].Reward.Mean, r300)
	}
	// Curves decay from the all-healthy start.
	if withPts[2].Reward.Mean >= withPts[0].Reward.Mean {
		t.Error("with-rejuvenation curve should decay from the healthy start")
	}
	if withoutPts[2].Reward.Mean >= withoutPts[0].Reward.Mean {
		t.Error("without-rejuvenation curve should decay from the healthy start")
	}
	// At long mission times, rejuvenation dominates and each curve
	// approaches its steady state.
	if withPts[2].Reward.Mean <= withoutPts[2].Reward.Mean {
		t.Errorf("at t=%v rejuvenation (%.4f) should dominate (%.4f)",
			times[2], withPts[2].Reward.Mean, withoutPts[2].Reward.Mean)
	}
	exact, err := without.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withoutPts[2].Reward.Mean-exact.Expected) > 0.02 {
		t.Errorf("long-run transient %.4f should approach the steady state %.4f",
			withoutPts[2].Reward.Mean, exact.Expected)
	}
}
