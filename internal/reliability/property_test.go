package reliability

import (
	"testing"
	"testing/quick"
)

// fuzzParams maps raw fuzz input into a valid parameter set.
func fuzzParams(pRaw, ppRaw, aRaw uint16) Params {
	pr := DefaultParams()
	pr.P = 0.3 * float64(pRaw) / 65535
	pr.PPrime = pr.P + (0.99-pr.P)*float64(ppRaw)/65535
	pr.Alpha = float64(aRaw) / 65535
	return pr
}

// TestPropertyStateReliabilityInUnitInterval: every reachable state's
// reliability is a probability for any valid parameter set.
func TestPropertyStateReliabilityInUnitInterval(t *testing.T) {
	f := func(pRaw, ppRaw, aRaw uint16) bool {
		pr := fuzzParams(pRaw, ppRaw, aRaw)
		for i := 0; i <= 3; i++ {
			for j := 0; i+j <= 3; j++ {
				for k := 0; i+j+k <= 3; k++ {
					r, err := pr.StateReliability(State{Healthy: i, Compromised: j, NonFunctional: k})
					if err != nil {
						return false
					}
					if r < 0 || r > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllHealthyBeatsAllCompromised: with every module in the same
// state, the all-healthy configuration is at least as reliable as the
// all-compromised one for any functional count. (Note that full per-module
// monotonicity does NOT hold in the paper's model: its own Table III has
// R(1,2,0) = 0.816 < R(0,3,0) = 0.927, because the mixed-state formulas use
// a coarser dependency term than the corner-state ones — a quirk this
// reproduction preserves.)
func TestPropertyAllHealthyBeatsAllCompromised(t *testing.T) {
	f := func(pRaw, ppRaw, aRaw uint16) bool {
		pr := fuzzParams(pRaw, ppRaw, aRaw)
		for n := 1; n <= 3; n++ {
			healthy, err := pr.StateReliability(State{Healthy: n})
			if err != nil {
				return false
			}
			compromised, err := pr.StateReliability(State{Compromised: n})
			if err != nil {
				return false
			}
			if healthy < compromised-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReliabilityMonotoneInP: for all-healthy states, reliability is
// non-increasing in p.
func TestPropertyReliabilityMonotoneInP(t *testing.T) {
	f := func(pRaw, aRaw uint16, deltaRaw uint8) bool {
		pr := fuzzParams(pRaw, 65535, aRaw)
		delta := 0.001 + 0.1*float64(deltaRaw)/255
		higher := pr
		higher.P = pr.P + delta
		if higher.P >= higher.PPrime {
			return true
		}
		for _, s := range []State{{Healthy: 1}, {Healthy: 2}, {Healthy: 3}} {
			a, err := pr.StateReliability(s)
			if err != nil {
				return false
			}
			b, err := higher.StateReliability(s)
			if err != nil {
				return false
			}
			if b > a+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyExactSolverProducesDistribution: for any valid parameters,
// the exact solution of the Fig. 2 model is a probability distribution over
// states with the right module count.
func TestPropertyExactSolverProducesDistribution(t *testing.T) {
	f := func(pRaw, ppRaw, aRaw uint16, mtRaw uint8) bool {
		pr := fuzzParams(pRaw, ppRaw, aRaw)
		pr.MeanTimeToCompromise = 1 + float64(mtRaw)*10
		pr.MeanTimeToFailure = 1 + float64(mtRaw)*5
		model, err := NewModel(3, pr, false)
		if err != nil {
			return false
		}
		res, err := model.SolveExact()
		if err != nil {
			return false
		}
		var total float64
		for s, p := range res.StateProbs {
			if p < -1e-12 || s.Total() != 3 {
				return false
			}
			total += p
		}
		if total < 0.999999 || total > 1.000001 {
			return false
		}
		return res.Expected >= 0 && res.Expected <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
