package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTableIIIStateReliabilities reproduces the paper's Table III: the
// reliability function value for every reachable (i,j,k) state at the
// parameters estimated from the GTSRB experiment.
func TestTableIIIStateReliabilities(t *testing.T) {
	pr := DefaultParams()
	cases := []struct {
		s    State
		want float64
	}{
		{State{3, 0, 0}, 0.988626295},
		{State{2, 0, 1}, 0.976732729},
		{State{2, 1, 0}, 0.881542506},
		{State{1, 0, 2}, 0.937107416},
		{State{1, 1, 1}, 0.943896878},
		{State{1, 2, 0}, 0.815870804},
		{State{0, 3, 0}, 0.926682718},
		{State{0, 2, 1}, 0.911061026},
		{State{0, 1, 2}, 0.759593560},
	}
	for _, c := range cases {
		got, err := pr.StateReliability(c.s)
		if err != nil {
			t.Fatalf("state %v: %v", c.s, err)
		}
		if !almostEqual(got, c.want, 2e-5) {
			t.Errorf("R%v = %.9f, want %.9f (paper Table III)", c.s, got, c.want)
		}
	}
}

func TestStateReliabilityZeroFunctional(t *testing.T) {
	pr := DefaultParams()
	for _, s := range []State{{0, 0, 3}, {0, 0, 1}, {0, 0, 2}} {
		got, err := pr.StateReliability(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("R%v = %v, want 0", s, got)
		}
	}
}

func TestStateReliabilityErrors(t *testing.T) {
	pr := DefaultParams()
	if _, err := pr.StateReliability(State{-1, 0, 0}); err == nil {
		t.Fatal("expected error for negative count")
	}
	if _, err := pr.StateReliability(State{4, 0, 0}); err == nil {
		t.Fatal("expected error for >3 functional modules")
	}
}

func TestStateReliabilityOrdering(t *testing.T) {
	// More compromised modules must never increase reliability, and the
	// all-healthy 3-version state must beat the all-healthy 2-version
	// state (full masking).
	pr := DefaultParams()
	r300, _ := pr.StateReliability(State{3, 0, 0})
	r210, _ := pr.StateReliability(State{2, 1, 0})
	r120, _ := pr.StateReliability(State{1, 2, 0})
	r030, _ := pr.StateReliability(State{0, 3, 0})
	if !(r300 > r210 && r210 > r120) {
		t.Fatalf("reliability should degrade with compromises: %v %v %v %v", r300, r210, r120, r030)
	}
	r200, _ := pr.StateReliability(State{2, 0, 0})
	if r300 <= r200 {
		t.Fatalf("3-version all-healthy (%v) should beat 2-version all-healthy (%v)", r300, r200)
	}
}

func TestEgeFailureProbability(t *testing.T) {
	// α = 1 degenerates to fully dependent: F = p.
	if got := EgeFailureProbability(0.1, 1); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("F(p=0.1, α=1) = %v, want 0.1", got)
	}
	// α = 0 means fully independent errors: F = 0 in this model.
	if got := EgeFailureProbability(0.1, 0); got != 0 {
		t.Fatalf("F(p=0.1, α=0) = %v, want 0", got)
	}
	// Monotone in α over the small-p regime.
	if EgeFailureProbability(0.05, 0.3) >= EgeFailureProbability(0.05, 0.9) {
		t.Fatal("failure probability should grow with dependency")
	}
}

func TestWenMachidaFailureProbability(t *testing.T) {
	// Symmetric case reduces towards Eq. 1 structure: a12=a13=a23=α.
	p, a := 0.06, 0.37
	got := WenMachidaFailureProbability(p, p, p, a, a, a)
	want := a*p + a*p + a*p - 2*a*a*p
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("F = %v, want %v", got, want)
	}
	// Zero dependency -> zero failure probability.
	if got := WenMachidaFailureProbability(0.1, 0.2, 0.3, 0, 0, 0); got != 0 {
		t.Fatalf("independent case F = %v, want 0", got)
	}
}

func TestExpectedReliability(t *testing.T) {
	pr := DefaultParams()
	pi := map[State]float64{
		{1, 0, 0}: 0.5,
		{0, 1, 0}: 0.5,
	}
	got, err := ExpectedReliability(pi, pr)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*(1-pr.P) + 0.5*(1-pr.PPrime)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("E[R] = %v, want %v", got, want)
	}
}

func TestExpectedReliabilityRejectsBadDistribution(t *testing.T) {
	pr := DefaultParams()
	if _, err := ExpectedReliability(map[State]float64{{1, 0, 0}: 0.4}, pr); err == nil {
		t.Fatal("expected error for non-normalised distribution")
	}
	if _, err := ExpectedReliability(map[State]float64{{1, 0, 0}: -1, {0, 1, 0}: 2}, pr); err == nil {
		t.Fatal("expected error for negative probability")
	}
}

func TestErrorProbabilityMatchesPaper(t *testing.T) {
	// Table II healthy accuracies -> p = 0.062892584.
	healthy := []float64{0.960095012, 0.920981789, 0.930245447}
	p, err := ErrorProbability(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 0.062892584, 1e-8) {
		t.Fatalf("p = %.9f, want 0.062892584", p)
	}
	compromised := []float64{0.755423595, 0.772050673, 0.751306413}
	pp, err := ErrorProbability(compromised)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pp, 0.240406440, 1e-8) {
		t.Fatalf("p' = %.9f, want 0.240406440", pp)
	}
}

func TestErrorProbabilityErrors(t *testing.T) {
	if _, err := ErrorProbability(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := ErrorProbability([]float64{1.2}); err == nil {
		t.Fatal("expected error for accuracy > 1")
	}
}

func TestAlphaPairwise(t *testing.T) {
	e1 := map[int]bool{1: true, 2: true, 3: true, 4: true}
	e2 := map[int]bool{3: true, 4: true, 5: true}
	// intersection {3,4} = 2, max size = 4.
	if got := AlphaPairwise(e1, e2); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("alpha = %v, want 0.5", got)
	}
	if got := AlphaPairwise(e2, e1); !almostEqual(got, 0.5, 1e-12) {
		t.Fatal("alpha should be symmetric")
	}
	if got := AlphaPairwise(nil, nil); got != 0 {
		t.Fatalf("alpha of empty sets = %v, want 0", got)
	}
	if got := AlphaPairwise(e1, e1); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("alpha of identical sets = %v, want 1", got)
	}
	// Disjoint sets.
	e3 := map[int]bool{99: true}
	if got := AlphaPairwise(e1, e3); got != 0 {
		t.Fatalf("alpha of disjoint sets = %v, want 0", got)
	}
}

func TestAlphaThreeVersion(t *testing.T) {
	e1 := map[int]bool{1: true, 2: true}
	e2 := map[int]bool{2: true, 3: true}
	e3 := map[int]bool{1: true, 3: true}
	// Each pair: |∩|=1, max=2 -> 0.5; mean = 0.5.
	if got := AlphaThreeVersion(e1, e2, e3); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("three-version alpha = %v, want 0.5", got)
	}
}

func TestPropertyAlphaInUnitInterval(t *testing.T) {
	f := func(a, b []uint8) bool {
		e1 := map[int]bool{}
		e2 := map[int]bool{}
		for _, v := range a {
			e1[int(v)] = true
		}
		for _, v := range b {
			e2[int(v)] = true
		}
		al := AlphaPairwise(e1, e2)
		return al >= 0 && al <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.P = 0.5
	bad.PPrime = 0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for p > p'")
	}
	bad2 := good
	bad2.RejuvenationInterval = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected error for zero interval")
	}
	bad3 := good
	bad3.Alpha = 1.5
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected error for alpha > 1")
	}
}

func TestBoundaries(t *testing.T) {
	pr := DefaultParams()
	if err := pr.CheckBoundary2v(); err != nil {
		t.Fatalf("default params violate 2v boundary: %v", err)
	}
	if err := pr.CheckBoundary3v(); err != nil {
		t.Fatalf("default params violate 3v boundary: %v", err)
	}
	extreme := pr
	extreme.P = 0.9
	extreme.PPrime = 0.95
	extreme.Alpha = 0.0
	if err := extreme.CheckBoundary2v(); err == nil {
		t.Fatal("expected 2v boundary violation for p=0.9, α=0")
	}
	if err := extreme.CheckBoundary3v(); err == nil {
		t.Fatal("expected 3v boundary violation for p=0.9, α=0")
	}
}
