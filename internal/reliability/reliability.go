// Package reliability implements the paper's reliability theory for
// multi-version ML systems: the dependent-failure models of Eq. 1 and Eq. 2,
// the state reliability matrices R_f2 (Eq. 4) and R_f3 (Eq. 5), the
// parameter boundaries, the expected system reliability of Eq. 3, and the
// empirical estimation of the parameters p, p′ and α from model accuracies
// and error sets (Eqs. 6–9). dspn.go adds the DSPN reliability models of
// Figs. 2 and 3.
package reliability

import (
	"fmt"
	"math"
)

// Params bundles the model parameters of the paper's Table IV.
type Params struct {
	// P is the output failure probability of a healthy module.
	P float64
	// PPrime is the output failure probability of a compromised module
	// (must exceed P).
	PPrime float64
	// Alpha is the error-probability dependency between modules.
	Alpha float64
	// MeanTimeToCompromise is 1/λc (transition Tc), seconds.
	MeanTimeToCompromise float64
	// MeanTimeToFailure is 1/λ (transition Tf), seconds.
	MeanTimeToFailure float64
	// MeanReactiveRejuvenation is 1/μ (transition Tr), seconds.
	MeanReactiveRejuvenation float64
	// MeanProactiveRejuvenation is 1/μr (transition Trj), seconds.
	MeanProactiveRejuvenation float64
	// RejuvenationInterval is 1/γ (deterministic transition Trc), seconds.
	RejuvenationInterval float64
}

// DefaultParams returns the paper's Table IV defaults, with p, p′ and α as
// estimated from the GTSRB fault-injection experiment.
func DefaultParams() Params {
	return Params{
		P:                         0.062892584,
		PPrime:                    0.240406440,
		Alpha:                     0.369952542,
		MeanTimeToCompromise:      1523,
		MeanTimeToFailure:         1523,
		MeanReactiveRejuvenation:  0.5,
		MeanProactiveRejuvenation: 0.5,
		RejuvenationInterval:      300,
	}
}

// WithAlpha returns a copy of the parameters with the dependency degree
// replaced — how the health engine's *measured* online α is substituted for
// the offline fault-injection estimate when projecting reliability
// (cmd/mvhealth's projection and the ROADMAP's canary lifecycle both use
// this). Values outside [0,1] are clamped.
func (pr Params) WithAlpha(alpha float64) Params {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	pr.Alpha = alpha
	return pr
}

// Validate checks basic parameter sanity (probabilities in range, positive
// times, p < p′).
func (pr Params) Validate() error {
	for name, v := range map[string]float64{
		"p": pr.P, "p'": pr.PPrime, "alpha": pr.Alpha,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("reliability: %s = %v outside [0,1]", name, v)
		}
	}
	if pr.P > pr.PPrime {
		return fmt.Errorf("reliability: p (%v) must not exceed p' (%v)", pr.P, pr.PPrime)
	}
	for name, v := range map[string]float64{
		"mean time to compromise":     pr.MeanTimeToCompromise,
		"mean time to failure":        pr.MeanTimeToFailure,
		"mean reactive rejuvenation":  pr.MeanReactiveRejuvenation,
		"mean proactive rejuvenation": pr.MeanProactiveRejuvenation,
		"rejuvenation interval":       pr.RejuvenationInterval,
	} {
		if v <= 0 {
			return fmt.Errorf("reliability: %s = %v must be positive", name, v)
		}
	}
	return nil
}

// CheckBoundary2v verifies the two-version parameter boundary
// p(2-α) <= 1 (Section V-B.2).
func (pr Params) CheckBoundary2v() error {
	if v := pr.P * (2 - pr.Alpha); v > 1 {
		return fmt.Errorf("reliability: two-version boundary violated: p(2-α) = %v > 1", v)
	}
	return nil
}

// CheckBoundary3v verifies the three-version parameter boundary
// p(3(1-α)+α²) <= 1 (Section V-B.3).
func (pr Params) CheckBoundary3v() error {
	if v := pr.P * (3*(1-pr.Alpha) + pr.Alpha*pr.Alpha); v > 1 {
		return fmt.Errorf("reliability: three-version boundary violated: p(3(1-α)+α²) = %v > 1", v)
	}
	return nil
}

// EgeFailureProbability is Eq. 1: the failure probability of a three-version
// system with identical per-version error probability p and dependency α.
func EgeFailureProbability(p, alpha float64) float64 {
	return 3*alpha*p*(1-alpha) + alpha*alpha*p
}

// WenMachidaFailureProbability is Eq. 2: the failure probability of a
// three-version ML system with per-model error probabilities p1..p3 and
// pairwise error-set intersections a12, a13, a23.
func WenMachidaFailureProbability(p1, p2, _ float64, a12, a13, a23 float64) float64 {
	return a12*p1 + a13*p1 + a23*p2 - 2*a12*a13*p1
}

// State identifies a system state by the number of modules that are healthy
// (i), compromised-but-functional (j) and non-functional (k) — the (i, j, k)
// triples of Section V-B. Modules undergoing rejuvenation count as
// non-functional.
type State struct {
	Healthy       int
	Compromised   int
	NonFunctional int
}

func (s State) String() string {
	return fmt.Sprintf("(%d,%d,%d)", s.Healthy, s.Compromised, s.NonFunctional)
}

// Total returns the module count n = i + j + k.
func (s State) Total() int { return s.Healthy + s.Compromised + s.NonFunctional }

// Functional returns the number of modules producing outputs (i + j).
func (s State) Functional() int { return s.Healthy + s.Compromised }

// StateReliability evaluates the reliability reward R_{i,j,k} for a state,
// i.e. the entries of the matrices R_f2 (Eq. 4) and R_f3 (Eq. 5) plus the
// single-version values. The value depends only on (i, j): k non-functional
// modules simply degrade the system to an (i + j)-version one. A state with
// no functional modules has reliability 0.
func (pr Params) StateReliability(s State) (float64, error) {
	if s.Healthy < 0 || s.Compromised < 0 || s.NonFunctional < 0 {
		return 0, fmt.Errorf("reliability: negative module count in state %v", s)
	}
	r, err := pr.stateReliabilityRaw(s)
	if err != nil {
		return 0, err
	}
	// The paper's mixed-state formulas (the α(p+p')(1-(p+p')/2) term) can
	// leave [0,1] outside their validity domain (p+p' > 1 with large α);
	// reliability is a probability, so truncate there. All of the paper's
	// own parameter ranges stay strictly inside the domain.
	if r < 0 {
		return 0, nil
	}
	if r > 1 {
		return 1, nil
	}
	return r, nil
}

func (pr Params) stateReliabilityRaw(s State) (float64, error) {
	p, pp, a := pr.P, pr.PPrime, pr.Alpha
	i, j := s.Healthy, s.Compromised
	switch i + j {
	case 0:
		return 0, nil
	case 1:
		if i == 1 {
			return 1 - p, nil
		}
		return 1 - pp, nil
	case 2:
		switch i {
		case 2:
			return 1 - a*p, nil
		case 1:
			return 1 - ((p+pp)/2)*a, nil
		default:
			return 1 - a*pp, nil
		}
	case 3:
		mixed := a * (p + pp) * (1 - (p+pp)/2)
		switch i {
		case 3:
			return 1 - (3*a*p*(1-a)+a*a)*p, nil
		case 2:
			return 1 - (a*p + mixed), nil
		case 1:
			return 1 - (a*pp + mixed), nil
		default:
			return 1 - (3*a*pp*(1-a)+a*a)*pp, nil
		}
	default:
		return 0, fmt.Errorf("reliability: no reliability function for %d functional modules (state %v)", i+j, s)
	}
}

// ExpectedReliability is Eq. 3: the steady-state expectation of the state
// reliabilities under a state distribution π.
func ExpectedReliability(pi map[State]float64, pr Params) (float64, error) {
	var total, mass float64
	for s, prob := range pi {
		if prob < 0 {
			return 0, fmt.Errorf("reliability: negative probability %v for state %v", prob, s)
		}
		r, err := pr.StateReliability(s)
		if err != nil {
			return 0, err
		}
		total += prob * r
		mass += prob
	}
	if math.Abs(mass-1) > 1e-6 {
		return 0, fmt.Errorf("reliability: state probabilities sum to %v, want 1", mass)
	}
	return total, nil
}

// ErrorProbability is Eq. 6/7: the complement of the mean accuracy over a
// set of models.
func ErrorProbability(accuracies []float64) (float64, error) {
	if len(accuracies) == 0 {
		return 0, fmt.Errorf("reliability: no accuracies given")
	}
	var sum float64
	for _, a := range accuracies {
		if a < 0 || a > 1 {
			return 0, fmt.Errorf("reliability: accuracy %v outside [0,1]", a)
		}
		sum += a
	}
	return 1 - sum/float64(len(accuracies)), nil
}

// AlphaPairwise is Eq. 8: the error-set intersection ratio
// |Ei ∩ Ej| / max(|Ei|, |Ej|) for two models' error sets (sets of
// misclassified sample indices). Two empty error sets have dependency 0.
func AlphaPairwise(ei, ej map[int]bool) float64 {
	maxLen := len(ei)
	if len(ej) > maxLen {
		maxLen = len(ej)
	}
	if maxLen == 0 {
		return 0
	}
	small, large := ei, ej
	if len(ej) < len(ei) {
		small, large = ej, ei
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	return float64(inter) / float64(maxLen)
}

// AlphaThreeVersion is Eq. 9: the mean of the three pairwise dependencies.
func AlphaThreeVersion(e1, e2, e3 map[int]bool) float64 {
	return (AlphaPairwise(e1, e2) + AlphaPairwise(e1, e3) + AlphaPairwise(e2, e3)) / 3
}
