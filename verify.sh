#!/bin/sh
# verify.sh — the repo's full verification gate: formatting, vet, build,
# and the complete test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l cmd internal examples bench_test.go bench_parallel_test.go bench_gemm_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

# Race pass: -short skips the NN-training marathons, which run 10-40x
# slower under the race detector and hold no concurrency of their own;
# everything concurrent (obs registry/tracer, exposition) stays covered.
echo "==> go test -race -short ./..."
go test -race -short ./...

# Full pass without the race detector: every test, including training.
echo "==> go test ./..."
go test ./...

# Shuffle pass: test order must not matter. -short keeps the pass cheap;
# any inter-test state dependence fails here with the seed printed for
# reproduction.
echo "==> go test -shuffle=on -short ./..."
go test -shuffle=on -short ./...

# Worker-count equivalence: the parallel fan-outs must reproduce the
# committed sequential golden outputs byte-for-byte at workers 1, 4 and 8.
echo "==> parallel equivalence (golden fixtures, workers 1/4/8)"
go test ./internal/experiments -run TestParallelEquivalenceGolden -count=1
go test ./internal/scenario -run TestFalsifierGolden -count=1

# Fuzz smoke: a few seconds per target catches regressions in the voting
# rules, quantile estimator and RNG stream derivation without the cost of a
# long campaign.
echo "==> fuzz smoke"
go test ./internal/core -run '^$' -fuzz '^FuzzVoter$' -fuzztime 5s
go test ./internal/core -run '^$' -fuzz '^FuzzMedianVoter$' -fuzztime 5s
go test ./internal/obs -run '^$' -fuzz '^FuzzHistogramQuantile$' -fuzztime 5s
go test ./internal/xrand -run '^$' -fuzz '^FuzzXrandSplit$' -fuzztime 5s
go test ./internal/nn -run '^$' -fuzz '^FuzzForwardBatchArena$' -fuzztime 5s
go test ./internal/tensor -run '^$' -fuzz '^FuzzGemmPackedBitwise$' -fuzztime 5s
go test ./internal/tensor -run '^$' -fuzz '^FuzzInt8QuantRoundTrip$' -fuzztime 5s
go test ./internal/scenario -run '^$' -fuzz '^FuzzScenarioRoundTrip$' -fuzztime 5s
go test ./internal/scenario -run '^$' -fuzz '^FuzzScenarioRun$' -fuzztime 5s

echo "OK"
