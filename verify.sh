#!/bin/sh
# verify.sh — the repo's full verification gate: formatting, vet, build,
# and the complete test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

# Race pass: -short skips the NN-training marathons, which run 10-40x
# slower under the race detector and hold no concurrency of their own;
# everything concurrent (obs registry/tracer, exposition) stays covered.
echo "==> go test -race -short ./..."
go test -race -short ./...

# Full pass without the race detector: every test, including training.
echo "==> go test ./..."
go test ./...

echo "OK"
