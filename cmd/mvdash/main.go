// Command mvdash renders the observability pipeline as a terminal dashboard
// or a machine-readable JSON report: request-rate sparklines, the top-K
// slowest stages with exemplar trace ids (jump straight into `mvtrace
// waterfall -trace N`), the health/incident timeline, and the recording-rule
// and alert state evaluated over the same store the server runs.
//
// Two sources, one renderer:
//
//	mvdash -in spans.jsonl                      # offline: replay an export
//	mvdash -metrics-addr localhost:9090         # live: poll /metrics
//
// Offline mode replays the span JSONL through the identical tsdb ingester
// and rule set the live server runs, so the dashboard shows exactly what the
// server's own rules saw — the live == replay contract extended to the
// whole telemetry pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/obs/tsdb"
	"mvml/internal/stats"
)

func main() {
	fs := flag.NewFlagSet("mvdash", flag.ExitOnError)
	in := fs.String("in", "", "span JSONL export to replay (offline mode)")
	addr := fs.String("metrics-addr", "", "host:port of a /metrics endpoint to poll (live mode)")
	format := fs.String("format", "text", "output format: text or json")
	topK := fs.Int("top", 8, "how many slow stages to list")
	width := fs.Int("width", 40, "sparkline width in characters")
	bucket := fs.Duration("bucket", time.Second, "time-series bucket width")
	poll := fs.Duration("poll", 2*time.Second, "live mode: scrape interval")
	duration := fs.Duration("duration", 10*time.Second, "live mode: how long to observe before rendering")
	requireExemplars := fs.Bool("require-exemplars", false,
		"exit non-zero unless slow stages carry exemplar trace ids covering every incident window (CI gate)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if (*in == "") == (*addr == "") {
		fmt.Fprintln(os.Stderr, "mvdash: exactly one of -in (offline) or -metrics-addr (live) is required")
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "mvdash: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	var (
		dash *Dashboard
		err  error
	)
	if *in != "" {
		dash, err = offline(*in, *bucket, *topK, *width)
	} else {
		dash, err = live(*addr, *bucket, *poll, *duration, *topK, *width)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdash:", err)
		os.Exit(1)
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dash); err != nil {
			fmt.Fprintln(os.Stderr, "mvdash:", err)
			os.Exit(1)
		}
	} else {
		render(os.Stdout, dash, *width)
	}

	if *requireExemplars {
		if err := checkExemplars(dash); err != nil {
			fmt.Fprintln(os.Stderr, "mvdash: exemplar gate:", err)
			os.Exit(1)
		}
	}
}

// StageRow is one slow stage: its latency digest plus the exemplar trace
// closest to the tail, ready for `mvtrace waterfall -trace N`.
type StageRow struct {
	Stage     string  `json:"stage"`
	Labels    string  `json:"labels,omitempty"`
	Count     float64 `json:"count"`
	P50       float64 `json:"p50_seconds"`
	P99       float64 `json:"p99_seconds"`
	Exemplar  uint64  `json:"exemplar_trace,omitempty"`
	ExemplarT float64 `json:"exemplar_t,omitempty"`
}

// Sparkline is one series rendered over time.
type Sparkline struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
	Max    float64   `json:"max"`
}

// TimelineEvent is one health or scaling transition.
type TimelineEvent struct {
	T      float64 `json:"t"`
	Kind   string  `json:"kind"` // transition | incident | rejuvenation
	Detail string  `json:"detail"`
}

// Dashboard is everything mvdash knows, in both render paths.
type Dashboard struct {
	Source    string                  `json:"source"`
	Mode      string                  `json:"mode"` // offline | live
	Horizon   float64                 `json:"horizon_seconds"`
	Spans     int                     `json:"spans,omitempty"`
	Traces    int                     `json:"traces,omitempty"`
	Requests  float64                 `json:"requests"`
	Errors    float64                 `json:"errors"`
	Rates     []Sparkline             `json:"rates,omitempty"`
	SlowTop   []StageRow              `json:"slow_stages,omitempty"`
	Timeline  []TimelineEvent         `json:"timeline,omitempty"`
	Incidents []health.IncidentWindow `json:"incidents,omitempty"`
	Alerts    []tsdb.AlertStatus      `json:"alerts,omitempty"`
	Rules     map[string]float64      `json:"rules,omitempty"`
}

// offline replays a span export through the same store + rules the server
// runs and derives the dashboard from the result.
func offline(path string, bucket time.Duration, topK, width int) (*Dashboard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	recs, err := obs.ReadSpans(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s holds no spans", path)
	}

	horizon := 0.0
	traces := map[uint64]struct{}{}
	for _, r := range recs {
		if r.End > horizon {
			horizon = r.End
		}
		traces[r.Trace] = struct{}{}
	}
	bs := bucket.Seconds()
	store := tsdb.New(tsdb.Config{
		BucketSeconds: bs,
		Buckets:       int(horizon/bs) + 2,
	})
	hopts := health.DefaultOptions()
	rules := tsdb.NewRules(store, bs, tsdb.DefaultServingRules(hopts))
	tsdb.Replay(recs, tsdb.NewIngester(store, rules))
	hreport := health.Replay(recs, hopts)

	dash := &Dashboard{
		Source: path, Mode: "offline", Horizon: horizon,
		Spans: len(recs), Traces: len(traces),
		Requests:  store.FamilySumOver(tsdb.SeriesRequests, 0, horizon+1),
		Errors:    store.FamilySumOver(tsdb.SeriesErrors, 0, horizon+1),
		SlowTop:   slowStages(store, horizon, topK),
		Rates:     rateSparklines(store, horizon, bs, width, tsdb.SeriesRequests, tsdb.SeriesErrors),
		Alerts:    rules.Alerts(),
		Rules:     ruleValues(store, rules),
		Incidents: hreport.Incidents,
	}
	dash.Timeline = healthTimeline(hreport)
	return dash, nil
}

// live polls a /metrics endpoint into a store for `duration`, then renders
// what accumulated. No spans are involved, so no exemplars — the sparkline
// and rate view of a running server.
func live(addr string, bucket, poll, duration time.Duration, topK, width int) (*Dashboard, error) {
	bs := bucket.Seconds()
	store := tsdb.New(tsdb.Config{
		BucketSeconds: bs,
		Buckets:       int(duration.Seconds()/bs) + 8,
	})
	sc := tsdb.NewScraper(store)
	url := "http://" + addr + "/metrics"
	start := time.Now()
	client := &http.Client{Timeout: poll}
	scrapes := 0
	for {
		elapsed := time.Since(start)
		if err := scrapeOnce(client, url, sc, elapsed.Seconds()); err != nil {
			if scrapes == 0 {
				return nil, err
			}
			fmt.Fprintln(os.Stderr, "mvdash: scrape:", err)
		} else {
			scrapes++
		}
		if elapsed >= duration {
			break
		}
		time.Sleep(poll)
	}
	if scrapes < 2 {
		return nil, fmt.Errorf("only %d scrape(s) of %s succeeded; need 2+ for rates", scrapes, url)
	}
	horizon := time.Since(start).Seconds()
	dash := &Dashboard{
		Source: url, Mode: "live", Horizon: horizon,
		SlowTop: scrapedQuantiles(store, horizon, topK),
	}
	// Sparkline every counter family that moved; gauges get their last value
	// reported as a single-point line.
	for _, name := range store.SeriesNames() {
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		dash.Rates = append(dash.Rates, familySpark(store, name, horizon, bs, width))
		if strings.HasSuffix(name, "_requests_total") || name == "mv_gateway_routed_total" {
			dash.Requests += store.FamilySumOver(name, 0, horizon+1)
		}
		if strings.Contains(name, "error") || strings.Contains(name, "failed") {
			dash.Errors += store.FamilySumOver(name, 0, horizon+1)
		}
	}
	return dash, nil
}

func scrapeOnce(client *http.Client, url string, sc *tsdb.Scraper, t float64) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return sc.ScrapeText(resp.Body, t)
}

// slowStages ranks every stage-latency series by p99 and attaches the
// exemplar nearest that tail.
func slowStages(store *tsdb.Store, horizon float64, topK int) []StageRow {
	var rows []StageRow
	for _, sv := range store.Snapshot() {
		if sv.Name != tsdb.SeriesStage || sv.Count == 0 {
			continue
		}
		row := StageRow{Stage: sv.Name, Labels: sv.Labels,
			Count: float64(sv.Count), P50: sv.P50, P99: sv.P99}
		if e, ok := store.ExemplarNearLabels(sv.Name, sv.Labels, sv.P99); ok {
			row.Exemplar, row.ExemplarT = e.Trace, e.T
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].P99 != rows[j].P99 {
			return rows[i].P99 > rows[j].P99
		}
		return rows[i].Labels < rows[j].Labels
	})
	if len(rows) > topK {
		rows = rows[:topK]
	}
	return rows
}

// scrapedQuantiles reconstructs latency quantiles from scraped Prometheus
// histogram component series (name_bucket{le=...}), live mode's stand-in
// for span-derived stage latencies.
func scrapedQuantiles(store *tsdb.Store, horizon float64, topK int) []StageRow {
	type fam struct {
		les    []float64
		counts map[float64]float64
		labels string
	}
	fams := map[string]*fam{}
	for _, sv := range store.Snapshot() {
		// Only latency histograms — size/count histograms would render with
		// meaningless duration units.
		if !strings.HasSuffix(sv.Name, "_seconds_bucket") {
			continue
		}
		le, rest, ok := splitLE(sv.Labels)
		if !ok {
			continue
		}
		key := strings.TrimSuffix(sv.Name, "_bucket") + "|" + rest
		f := fams[key]
		if f == nil {
			f = &fam{counts: map[float64]float64{}, labels: rest}
			fams[key] = f
		}
		f.les = append(f.les, le)
		// Scraped _bucket series are rate-kind: their per-interval deltas
		// live in the points, not in a histogram Sum.
		total := 0.0
		for _, p := range sv.Points {
			total += p.V
		}
		f.counts[le] += total
	}
	var rows []StageRow
	for key, f := range fams {
		sort.Float64s(f.les)
		bounds := make([]float64, 0, len(f.les))
		counts := make([]uint64, 0, len(f.les))
		var prev float64
		total := 0.0
		for _, le := range f.les {
			cum := f.counts[le]
			d := cum - prev
			if d < 0 {
				d = 0
			}
			prev = cum
			if !math.IsInf(le, 1) {
				bounds = append(bounds, le)
			}
			counts = append(counts, uint64(d+0.5))
			total = cum
		}
		if total == 0 {
			continue
		}
		name := key[:strings.IndexByte(key, '|')]
		rows = append(rows, StageRow{
			Stage: name, Labels: f.labels, Count: total,
			P50: stats.BucketQuantile(bounds, counts, 0.50),
			P99: stats.BucketQuantile(bounds, counts, 0.99),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].P99 != rows[j].P99 {
			return rows[i].P99 > rows[j].P99
		}
		return rows[i].Stage+rows[i].Labels < rows[j].Stage+rows[j].Labels
	})
	if len(rows) > topK {
		rows = rows[:topK]
	}
	return rows
}

// splitLE strips the le="..." pair out of a canonical label string.
func splitLE(labels string) (le float64, rest string, ok bool) {
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if v, found := strings.CutPrefix(part, `le="`); found {
			v = strings.TrimSuffix(v, `"`)
			if v == "+Inf" {
				le, ok = math.Inf(1), true
			} else if _, err := fmt.Sscanf(v, "%g", &le); err == nil {
				ok = true
			}
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ","), ok
}

// rateSparklines builds one per-bucket sparkline per labelled series of the
// given families.
func rateSparklines(store *tsdb.Store, horizon, bs float64, width int, families ...string) []Sparkline {
	var out []Sparkline
	for _, fam := range families {
		for _, ls := range store.LabelSets(fam) {
			sp := seriesSpark(store, fam, ls, horizon, bs, width)
			if sp.Max > 0 {
				out = append(out, sp)
			}
		}
	}
	return out
}

func familySpark(store *tsdb.Store, fam string, horizon, bs float64, width int) Sparkline {
	sp := Sparkline{Name: fam}
	for _, ls := range store.LabelSets(fam) {
		s := seriesSpark(store, fam, ls, horizon, bs, width)
		if len(sp.Values) == 0 {
			sp.Values = make([]float64, len(s.Values))
		}
		for i := range s.Values {
			sp.Values[i] += s.Values[i]
			if sp.Values[i] > sp.Max {
				sp.Max = sp.Values[i]
			}
		}
	}
	return sp
}

func seriesSpark(store *tsdb.Store, fam, labels string, horizon, bs float64, width int) Sparkline {
	sp := Sparkline{Name: fam}
	if labels != "" {
		sp.Name = fam + "{" + labels + "}"
	}
	// One sparkline cell per `step` seconds so the whole horizon fits.
	step := bs
	for horizon/step > float64(width) {
		step *= 2
	}
	for t := 0.0; t < horizon; t += step {
		v := store.SumOverLabels(fam, labels, t, t+step-1e-9)
		sp.Values = append(sp.Values, v)
		if v > sp.Max {
			sp.Max = v
		}
	}
	return sp
}

func ruleValues(store *tsdb.Store, rules *tsdb.Rules) map[string]float64 {
	out := map[string]float64{}
	for _, name := range rules.RuleNames() {
		if v, ok := store.LastValue(name); ok {
			out[name] = v
		}
	}
	return out
}

// healthTimeline compresses the health report into dashboard events.
func healthTimeline(r *health.Report) []TimelineEvent {
	var out []TimelineEvent
	for _, tr := range r.Timeline {
		out = append(out, TimelineEvent{T: tr.T, Kind: "transition",
			Detail: fmt.Sprintf("%s: %s → %s (%s)", tr.Component, tr.From, tr.To, tr.Reason)})
	}
	for _, rj := range r.Rejuvenations {
		out = append(out, TimelineEvent{T: rj.T, Kind: "rejuvenation",
			Detail: fmt.Sprintf("%s (%s)", rj.Version, rj.Kind)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	const maxEvents = 64
	if len(out) > maxEvents {
		out = out[len(out)-maxEvents:]
	}
	return out
}

// checkExemplars is the CI gate: every incident window must be reachable
// from at least one slow-stage exemplar, so an on-call engineer can always
// jump from "something was wrong here" to a concrete retained trace.
func checkExemplars(d *Dashboard) error {
	var withEx []StageRow
	for _, row := range d.SlowTop {
		if row.Exemplar != 0 {
			withEx = append(withEx, row)
		}
	}
	if len(withEx) == 0 {
		return fmt.Errorf("no slow stage carries an exemplar trace id")
	}
	for _, w := range d.Incidents {
		covered := false
		for _, row := range withEx {
			if row.ExemplarT >= w.Start-1 && row.ExemplarT <= w.End+1 {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("incident window [%.2f, %.2f] has no exemplar trace", w.Start, w.End)
		}
	}
	return nil
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func spark(vals []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(sparkRunes)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

func dur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

func render(w io.Writer, d *Dashboard, width int) {
	fmt.Fprintf(w, "mvdash · %s · %s · horizon %s\n", d.Mode, d.Source, dur(d.Horizon))
	if d.Spans > 0 {
		fmt.Fprintf(w, "%d spans · %d traces · ", d.Spans, d.Traces)
	}
	errPct := 0.0
	if d.Requests > 0 {
		errPct = d.Errors / d.Requests * 100
	}
	fmt.Fprintf(w, "%.0f requests · %.0f errors (%.1f%%)\n\n", d.Requests, d.Errors, errPct)

	if len(d.Rates) > 0 {
		fmt.Fprintln(w, "rates (per bucket):")
		for _, sp := range d.Rates {
			fmt.Fprintf(w, "  %-48s %s max %.0f\n", sp.Name, spark(sp.Values, sp.Max), sp.Max)
		}
		fmt.Fprintln(w)
	}

	if len(d.SlowTop) > 0 {
		fmt.Fprintln(w, "slowest stages (by p99):")
		fmt.Fprintf(w, "  %-52s %10s %10s %8s %s\n", "stage", "p50", "p99", "count", "exemplar")
		for _, row := range d.SlowTop {
			name := row.Stage
			if row.Labels != "" {
				name += "{" + row.Labels + "}"
			}
			ex := "-"
			if row.Exemplar != 0 {
				ex = fmt.Sprintf("trace %d", row.Exemplar)
			}
			fmt.Fprintf(w, "  %-52s %10s %10s %8.0f %s\n",
				name, dur(row.P50), dur(row.P99), row.Count, ex)
		}
		fmt.Fprintln(w)
	}

	if len(d.Alerts) > 0 {
		fmt.Fprintln(w, "alerts:")
		for _, a := range d.Alerts {
			state := "ok"
			if a.Firing {
				state = "FIRING"
				if a.Critical {
					state = "FIRING (critical)"
				}
			}
			fmt.Fprintf(w, "  %-40s %-18s value %.4g threshold %.4g\n", a.Name, state, a.Value, a.Threshold)
		}
		fmt.Fprintln(w)
	}

	if len(d.Incidents) > 0 {
		fmt.Fprintln(w, "incidents:")
		for _, iw := range d.Incidents {
			state := "unresolved"
			if iw.Resolved {
				state = "resolved"
			}
			fmt.Fprintf(w, "  [%8.2fs – %8.2fs] peak %-9s %s\n", iw.Start, iw.End, iw.Peak, state)
		}
		fmt.Fprintln(w)
	}

	if len(d.Timeline) > 0 {
		fmt.Fprintln(w, "timeline:")
		for _, ev := range d.Timeline {
			fmt.Fprintf(w, "  %8.2fs %-13s %s\n", ev.T, ev.Kind, ev.Detail)
		}
	}
}
