// Command dspn builds and solves the paper's DSPN reliability models
// (Figs. 2 and 3) directly: it prints the steady-state probability of every
// (i, j, k) system state, the expected output reliability, and — for the
// proactive model — cross-validates the Monte-Carlo solution against the
// Erlang phase-type approximation.
//
// Usage:
//
//	dspn -n 3                   # three-version model, both variants
//	dspn -n 2 -interval 120     # two-version model, custom clock
//	dspn -n 3 -erlang 20        # include the Erlang cross-check
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

func main() {
	n := flag.Int("n", 3, "number of ML module versions (1-3)")
	interval := flag.Float64("interval", 0, "rejuvenation interval 1/gamma in seconds (0 = Table IV default)")
	erlang := flag.Int("erlang", 0, "Erlang stages for the cross-validation solve (0 = skip)")
	transient := flag.Bool("transient", false, "also print the mission-time reliability curve E[R(t)]")
	horizon := flag.Float64("horizon", 0, "simulation horizon (0 = default)")
	workers := flag.Int("workers", 0, "concurrent transient replications (0 = GOMAXPROCS; results are worker-count-invariant)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	var tele obs.CLI
	tele.RegisterFlags(flag.CommandLine)
	var hcli health.CLI
	hcli.RegisterFlags(flag.CommandLine)
	flag.Parse()

	tele.InfoLabel("workers", fmt.Sprintf("%d", *workers))
	rt, err := tele.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspn:", err)
		os.Exit(1)
	}
	hcli.Attach(rt)
	runErr := run(*n, *interval, *erlang, *transient, *horizon, *workers, *seed, rt)
	if err := hcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "dspn:", err)
	}
	if err := tele.Finish(map[string]any{
		"command": "dspn", "versions": *n, "seed": *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dspn:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dspn:", runErr)
		os.Exit(1)
	}
}

func printStates(probs map[reliability.State]float64) {
	states := make([]reliability.State, 0, len(probs))
	for s := range probs {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].Healthy != states[j].Healthy {
			return states[i].Healthy > states[j].Healthy
		}
		return states[i].Compromised > states[j].Compromised
	})
	for _, s := range states {
		fmt.Printf("  pi%v = %.6f\n", s, probs[s])
	}
}

func run(n int, interval float64, erlang int, transient bool, horizon float64, workers int, seed uint64, rt *obs.Runtime) error {
	params := reliability.DefaultParams()
	if interval > 0 {
		params.RejuvenationInterval = interval
	}
	simCfg := reliability.DefaultSimConfig()
	if horizon > 0 {
		simCfg.Horizon = horizon
		simCfg.Warmup = horizon / 100
	}
	simCfg.Metrics = rt.Metrics()
	simCfg.Tracer = rt.Tracer()
	rng := xrand.New(seed)

	without, err := reliability.NewModel(n, params, false)
	if err != nil {
		return err
	}
	exact, err := without.SolveExact()
	if err != nil {
		return err
	}
	fmt.Printf("%d-version model WITHOUT proactive rejuvenation (Fig. 2, exact CTMC):\n", n)
	printStates(exact.StateProbs)
	fmt.Printf("  E[R] = %.6f\n\n", exact.Expected)

	with, err := reliability.NewModel(n, params, true)
	if err != nil {
		return err
	}
	sim, err := with.SolveSimulation(simCfg, rng)
	if err != nil {
		return err
	}
	fmt.Printf("%d-version model WITH proactive rejuvenation (Fig. 3, DSPN simulation, 1/gamma = %.0fs):\n",
		n, params.RejuvenationInterval)
	printStates(sim.StateProbs)
	fmt.Printf("  E[R] = %.6f  CI %s\n", sim.Expected, sim.CI)

	if erlang > 0 {
		erl, err := with.SolveErlang(erlang)
		if err != nil {
			return err
		}
		fmt.Printf("\nErlang(%d) phase-type cross-check: E[R] = %.6f (delta %.6f)\n",
			erlang, erl.Expected, erl.Expected-sim.Expected)
	}

	if transient {
		times := []float64{
			params.RejuvenationInterval / 2, params.RejuvenationInterval,
			params.MeanTimeToCompromise / 2, params.MeanTimeToCompromise,
			2 * params.MeanTimeToCompromise, 4 * params.MeanTimeToCompromise,
		}
		fmt.Println("\nmission-time reliability E[R(t)] from an all-healthy start:")
		fmt.Println("  t (s)        w/ rejuvenation          w/o proactive rejuvenation")
		withPts, err := with.TransientReliability(times, 2000, workers, rng.Split("transient-with", 0))
		if err != nil {
			return err
		}
		withoutPts, err := without.TransientReliability(times, 2000, workers, rng.Split("transient-without", 0))
		if err != nil {
			return err
		}
		for i := range withPts {
			fmt.Printf("  %8.0f     %.4f [%.4f,%.4f]   %.4f [%.4f,%.4f]\n",
				withPts[i].Time,
				withPts[i].Reward.Mean, withPts[i].Reward.Lo, withPts[i].Reward.Hi,
				withoutPts[i].Reward.Mean, withoutPts[i].Reward.Lo, withoutPts[i].Reward.Hi)
		}
	}
	return nil
}
