// Command mvserve runs the online multi-version inference service: the
// three-version traffic-sign ensemble behind an HTTP API with bounded
// admission, micro-batching, majority voting and zero-downtime rejuvenation.
//
// Usage:
//
//	mvserve serve -addr :8080              # run the service
//	mvserve loadgen -target http://host:8080 -rate 200 -duration 5s
//	mvserve demo                           # in-process server + open-loop load
//	                                       # + forced compromise + rejuvenation
//
// Telemetry (shared by all binaries): -metrics-addr serves live Prometheus
// exposition, -telemetry-out writes the end-of-run JSON summary, -trace-out
// dumps the JSONL event trace. Attaching telemetry never changes responses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/obs/tsdb"
	"mvml/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mvserve serve   [flags]   run the inference service
  mvserve loadgen [flags]   open-loop load against a running service
  mvserve demo    [flags]   self-contained resilience demo (server+load+rejuvenation)
run "mvserve <subcommand> -h" for flags`)
}

// serveFlags registers the serving Config on fs and returns a loader.
func serveFlags(fs *flag.FlagSet) func() serve.Config {
	def := serve.DefaultConfig()
	versions := fs.Int("versions", def.Versions, "ensemble size")
	workers := fs.Int("workers", def.WorkersPerVersion, "worker replicas per version")
	queue := fs.Int("queue", def.QueueDepth, "admission queue depth")
	batch := fs.Int("batch", def.MaxBatch, "micro-batch flush size")
	batchWait := fs.Duration("batch-wait", def.MaxBatchWait, "micro-batch flush deadline")
	timeout := fs.Duration("timeout", def.RequestTimeout, "per-request deadline")
	seed := fs.Uint64("seed", def.Seed, "root random seed")
	epochs := fs.Int("train-epochs", 0, "train the ensemble this many epochs before serving (0 = untrained)")
	perClass := fs.Int("train-per-class", def.Dataset.TrainPerClass, "training images per class (with -train-epochs)")
	injects := fs.Int("inject-count", def.InjectCount, "weights perturbed per compromise event")
	gemmWorkers := fs.Int("gemm-workers", def.GemmWorkers, "row-tile fan-out of each worker's fused conv GEMMs (<=1 sequential)")
	int8Versions := fs.String("int8-versions", "", "comma-separated version indices served through the int8 quantized path (e.g. 1 or 0,2)")
	profileLayers := fs.Bool("profile-layers", false, "time every layer dispatch and count GEMM volumes into the metrics registry")
	proactive := fs.Duration("proactive", 0, "proactive rejuvenation interval (0 = disabled)")
	window := fs.Int("divergence-window", def.DivergenceWindow, "reactive-trigger observation window")
	threshold := fs.Float64("divergence-threshold", def.DivergenceThreshold, "reactive-trigger disagreement fraction")
	return func() serve.Config {
		cfg := serve.DefaultConfig()
		cfg.Int8Versions = parseIndexList(*int8Versions)
		cfg.Versions = *versions
		cfg.WorkersPerVersion = *workers
		cfg.QueueDepth = *queue
		cfg.MaxBatch = *batch
		cfg.MaxBatchWait = *batchWait
		cfg.RequestTimeout = *timeout
		cfg.Seed = *seed
		cfg.TrainEpochs = *epochs
		cfg.Dataset.TrainPerClass = *perClass
		cfg.InjectCount = *injects
		cfg.GemmWorkers = *gemmWorkers
		cfg.ProfileLayers = *profileLayers
		cfg.ProactiveInterval = *proactive
		cfg.DivergenceWindow = *window
		cfg.DivergenceThreshold = *threshold
		return cfg
	}
}

// parseIndexList parses a comma-separated list of non-negative version
// indices; malformed entries are dropped (Config.Validate still rejects
// out-of-range indices).
func parseIndexList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvserve: ignoring malformed version index %q\n", part)
			continue
		}
		out = append(out, v)
	}
	return out
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("mvserve serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	loadCfg := serveFlags(fs)
	var tele obs.CLI
	tele.RegisterFlags(fs)
	var hcli health.CLI
	hcli.RegisterFlags(fs)
	var tcli tsdb.CLI
	tcli.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadCfg()
	cfg.Health = hcli.Options()
	tele.InfoLabel("workers", fmt.Sprintf("%dx%d", cfg.Versions, cfg.WorkersPerVersion))
	rt, err := tele.Start()
	if err != nil {
		return err
	}
	hopts := health.DefaultOptions()
	if cfg.Health != nil {
		hopts = *cfg.Health
	}
	tcli.Attach(rt, hopts)
	defer func() {
		if err := hcli.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
		}
		if err := tcli.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
		}
		if err := tele.Finish(map[string]any{"command": "serve"}); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
		}
	}()

	s, err := serve.New(cfg, rt)
	if err != nil {
		return err
	}
	defer s.Close()
	// The server owns the engine (verdicts drive rejuvenation); adopt it so
	// the deferred Finish reports on it. Rule alerts feed the same engine.
	hcli.Observe(s.Health())
	tcli.Observe(s.Health())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mvserve: serving on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "mvserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("mvserve loadgen", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the service")
	def := serve.DefaultLoadConfig()
	rate := fs.Float64("rate", def.Rate, "open-loop request rate (req/s)")
	duration := fs.Duration("duration", def.Duration, "load duration")
	timeout := fs.Duration("request-timeout", def.Timeout, "per-request HTTP timeout")
	seed := fs.Uint64("seed", def.Seed, "request-stream seed")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := serve.RunLoad(*target, serve.LoadConfig{
		Rate: *rate, Duration: *duration, Timeout: *timeout, Seed: *seed,
	})
	if err != nil {
		return err
	}
	return printReport(rep, *jsonOut)
}

func printReport(rep *serve.LoadReport, asJSON bool) error {
	if asJSON {
		return json.NewEncoder(os.Stdout).Encode(rep)
	}
	fmt.Println(rep)
	return nil
}

// cmdDemo is the self-contained resilience demonstration: it brings the
// service up in-process, drives open-loop load, compromises one version
// mid-run, lets the reactive trigger rejuvenate it, and reports the outcome.
// It exits non-zero if any request failed (5xx/transport) — degraded answers
// and 429 rejections are the designed behaviours, failures are not.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("mvserve demo", flag.ExitOnError)
	loadCfg := serveFlags(fs)
	def := serve.DefaultLoadConfig()
	rate := fs.Float64("rate", def.Rate, "open-loop request rate (req/s)")
	duration := fs.Duration("duration", def.Duration, "load duration")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	var tele obs.CLI
	tele.RegisterFlags(fs)
	var hcli health.CLI
	hcli.RegisterFlags(fs)
	var tcli tsdb.CLI
	tcli.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadCfg()
	cfg.Health = hcli.Options()
	tele.InfoLabel("workers", fmt.Sprintf("%dx%d", cfg.Versions, cfg.WorkersPerVersion))
	rt, err := tele.Start()
	if err != nil {
		return err
	}
	hopts := health.DefaultOptions()
	if cfg.Health != nil {
		hopts = *cfg.Health
	}
	tcli.Attach(rt, hopts)

	// The demo leans on the reactive trigger: make it responsive enough to
	// fire within the run unless the operator tuned it explicitly.
	s, err := serve.New(cfg, rt)
	if err != nil {
		return err
	}
	defer s.Close()
	hcli.Observe(s.Health())
	tcli.Observe(s.Health())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "mvserve demo: serving on %s, load %.0f req/s for %v\n", base, *rate, *duration)

	// Mid-run fault: compromise version 0 a third of the way in; the
	// divergence monitor should drain and restore it while load continues.
	go func() {
		time.Sleep(*duration / 3)
		fmt.Fprintln(os.Stderr, "mvserve demo: compromising version 0")
		if err := s.Compromise(0); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve demo:", err)
		}
	}()

	rep, err := serve.RunLoad(base, serve.LoadConfig{
		Rate: *rate, Duration: *duration, Timeout: 5 * time.Second, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	if err := printReport(rep, *jsonOut); err != nil {
		return err
	}
	if rt != nil {
		reactive := rt.Metrics().Counter("mvserve_rejuvenations_total", "kind", serve.RejuvReactive)
		proactive := rt.Metrics().Counter("mvserve_rejuvenations_total", "kind", serve.RejuvProactive)
		degraded := rt.Metrics().Counter("mvserve_degraded_total")
		fmt.Printf("rejuvenations: %d reactive, %d proactive; degraded answers: %d\n",
			reactive.Value(), proactive.Value(), degraded.Value())
	}
	if err := hcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
	}
	if err := tcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
	}
	if err := tele.Finish(map[string]any{"command": "demo", "report": rep}); err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
	}
	if rep.Failed > 0 || rep.Errors > 0 {
		return fmt.Errorf("demo saw %d failed and %d transport-error requests", rep.Failed, rep.Errors)
	}
	fmt.Println("demo passed: zero failed requests across compromise and rejuvenation")
	return nil
}
