// Command mvfalsify is the adversarial scenario falsifier: it searches the
// driving-scenario space for safety violations (collisions, near-collisions,
// undetected obstacles), shrinks each find to a locally-minimal
// counterexample, and maintains the regression corpus replayed by
// `go test ./internal/scenario`.
//
// Usage:
//
//	mvfalsify search -seed 7 -chains 24 -steps 60 -corpus internal/scenario/testdata/corpus -write
//	mvfalsify search -seed 7 -chains 8 -steps 60 -corpus ... -rediscover   # CI smoke
//	mvfalsify replay -corpus internal/scenario/testdata/corpus
//	mvfalsify show   -in ce-abcdef012345.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mvml/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "search":
		err = cmdSearch(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvfalsify:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mvfalsify search [-seed N] [-chains N] [-steps N] [-workers N]
                   [-corpus DIR] [-write] [-rediscover] [-min-violations N]
      run the falsifier; -write banks new minimized counterexamples in the
      corpus, -rediscover requires at least one find to already be a corpus
      member (the CI determinism gate), -min-violations fails the run if
      fewer distinct counterexamples were found
  mvfalsify replay -corpus DIR
      re-evaluate every corpus entry and report divergence from its stored
      metrics (exit 1 on any mismatch or lost violation)
  mvfalsify show -in FILE
      pretty-print one corpus entry with its re-evaluated metrics
run "mvfalsify <subcommand> -h" for flags`)
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	seed := fs.Uint64("seed", 7, "search root seed")
	chains := fs.Int("chains", 24, "independent hill-climbing chains")
	steps := fs.Int("steps", 60, "evaluations per chain")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; never changes results)")
	corpusDir := fs.String("corpus", "", "corpus directory for -write / -rediscover")
	write := fs.Bool("write", false, "bank minimized counterexamples into -corpus")
	rediscover := fs.Bool("rediscover", false, "require >=1 found counterexample to already be in -corpus")
	minViolations := fs.Int("min-violations", 0, "fail unless at least this many distinct counterexamples were found")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*write || *rediscover) && *corpusDir == "" {
		return fmt.Errorf("-write/-rediscover need -corpus")
	}

	rep, err := scenario.Search(scenario.Config{
		Chains: *chains, Steps: *steps, Workers: *workers, Seed: *seed, Minimize: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("explored %d scenarios across %d chains (seed %d): %d violations, %d distinct counterexamples\n",
		rep.Explored, *chains, *seed, rep.Violations, len(rep.Counterexamples))
	fmt.Println("min-TTC distribution over explored scenarios:")
	for _, b := range rep.TTCHistogram {
		fmt.Printf("  [%5.1f, %5.1f)s %5d\n", b.Lo, b.Hi, b.Count)
	}
	for _, ce := range rep.Counterexamples {
		fmt.Printf("  %s  chain=%-2d step=%-3d %s\n",
			scenario.Fingerprint(ce.Scenario), ce.Chain, ce.Step, scenario.DescribeMetrics(ce.Metrics))
	}

	if len(rep.Counterexamples) < *minViolations {
		return fmt.Errorf("found %d distinct counterexamples, need %d", len(rep.Counterexamples), *minViolations)
	}
	if *rediscover {
		entries, _, err := scenario.LoadCorpus(*corpusDir)
		if err != nil {
			return err
		}
		known := scenario.CorpusFingerprints(entries)
		hits := 0
		for _, ce := range rep.Counterexamples {
			if known[scenario.Fingerprint(ce.Scenario)] {
				hits++
			}
		}
		fmt.Printf("rediscovered %d/%d corpus entries\n", hits, len(entries))
		if hits == 0 {
			return fmt.Errorf("search rediscovered no corpus entry — determinism or search regression")
		}
	}
	if *write {
		wrote := 0
		for _, ce := range rep.Counterexamples {
			path, err := scenario.WriteEntry(*corpusDir, scenario.Entry{
				Scenario: ce.Scenario,
				Metrics:  ce.Metrics,
				Note: fmt.Sprintf("mvfalsify search -seed %d -chains %d -steps %d (chain %d, step %d)",
					*seed, *chains, *steps, ce.Chain, ce.Step),
			})
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
			wrote++
		}
		fmt.Printf("banked %d counterexamples in %s\n", wrote, *corpusDir)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "corpus directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusDir == "" {
		return fmt.Errorf("replay needs -corpus")
	}
	entries, names, err := scenario.LoadCorpus(*corpusDir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no corpus entries under %s", *corpusDir)
	}
	bad := 0
	for i, e := range entries {
		got, err := scenario.Evaluate(e.Scenario)
		switch {
		case err != nil:
			fmt.Printf("FAIL %s: %v\n", names[i], err)
			bad++
		case got != e.Metrics:
			fmt.Printf("FAIL %s: metrics diverged\n  stored: %s\n  got:    %s\n",
				names[i], scenario.DescribeMetrics(e.Metrics), scenario.DescribeMetrics(got))
			bad++
		case !got.Violation:
			fmt.Printf("FAIL %s: no longer a violation (%s)\n", names[i], scenario.DescribeMetrics(got))
			bad++
		default:
			fmt.Printf("ok   %s: %s\n", names[i], scenario.DescribeMetrics(got))
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d/%d corpus entries failed replay", bad, len(entries))
	}
	fmt.Printf("replayed %d counterexamples, all reproduced\n", len(entries))
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "corpus entry file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("show needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	e, err := scenario.DecodeEntry(data)
	if err != nil {
		return err
	}
	got, err := scenario.Evaluate(e.Scenario)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(struct {
		Fingerprint string           `json:"fingerprint"`
		Entry       scenario.Entry   `json:"entry"`
		Reevaluated scenario.Metrics `json:"reevaluated"`
		Reproduced  bool             `json:"reproduced"`
	}{scenario.Fingerprint(e.Scenario), e, got, got == e.Metrics}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
