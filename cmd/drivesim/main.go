// Command drivesim regenerates the paper's CARLA case study (Tables VI–VIII)
// on the built-in 2-D driving simulator, plus the design-choice ablations.
//
// Usage:
//
//	drivesim -table 6          # collision data, 8 routes, w/ and w/o rejuvenation
//	drivesim -table 7          # rejuvenation-interval sweep on route #1
//	drivesim -table 8          # overhead comparison
//	drivesim -ablation voting|selection|clocks
//	drivesim -all
//
// Telemetry (shared by all four binaries): -metrics-addr serves live
// Prometheus exposition, -telemetry-out writes the end-of-run JSON summary,
// -trace-out dumps the JSONL event trace. Attaching telemetry never changes
// a run's decisions.
package main

import (
	"flag"
	"fmt"
	"os"

	"mvml/internal/experiments"
	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/xrand"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (6-8)")
	mapPath := flag.String("map", "", "render the town maps and routes (Fig. 5 analog) to this PNG path")
	ablation := flag.String("ablation", "", "ablation study: voting, selection, or clocks")
	all := flag.Bool("all", false, "run every case-study experiment")
	runs := flag.Int("runs", 5, "runs per route")
	workers := flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS; results are worker-count-invariant)")
	seed := flag.Uint64("seed", 2025, "root random seed")
	var tele obs.CLI
	tele.RegisterFlags(flag.CommandLine)
	var hcli health.CLI
	hcli.RegisterFlags(flag.CommandLine)
	flag.Parse()

	tele.InfoLabel("workers", fmt.Sprintf("%d", *workers))
	rt, err := tele.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "drivesim:", err)
		os.Exit(1)
	}
	hcli.Attach(rt)
	runErr := run(*table, *mapPath, *ablation, *all, *runs, *workers, *seed, rt)
	if err := hcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "drivesim:", err)
	}
	if err := tele.Finish(map[string]any{
		"command": "drivesim", "seed": *seed, "runs": *runs,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "drivesim:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "drivesim:", runErr)
		os.Exit(1)
	}
}

func run(table int, mapPath, ablation string, all bool, runs, workers int, seed uint64, rt *obs.Runtime) error {
	cfg := experiments.DefaultCaseStudyConfig()
	cfg.RunsPerRoute = runs
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Obs = rt

	ran := false
	if mapPath != "" {
		ran = true
		if err := renderMaps(mapPath); err != nil {
			return err
		}
	}
	if table == 6 || all {
		ran = true
		res, err := experiments.RunTableVI(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if table == 7 || all {
		ran = true
		res, err := experiments.RunTableVII(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if table == 8 || all {
		ran = true
		res, err := experiments.RunTableVIII(cfg, 3)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if ablation == "voting" || all {
		ran = true
		res, err := experiments.RunVotingAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if ablation == "selection" || all {
		ran = true
		res, err := experiments.RunSelectionAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if ablation == "clocks" || all {
		ran = true
		res, err := experiments.RunClockAblation(cfg.System, 100_000, xrand.New(seed))
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -table 6..8, -map <png>, -ablation voting|selection|clocks, or -all")
	}
	return nil
}
