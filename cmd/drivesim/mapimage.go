package main

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"mvml/internal/drivesim"
)

// renderMaps draws the four town layouts with their two routes each — the
// reproduction of the paper's Fig. 5 — into a 2x2-panel PNG. Route start
// points are marked with a filled disc (the paper's ovals), endpoints with a
// cross (the paper's stars).
func renderMaps(path string) error {
	const (
		panel  = 360
		margin = 24
	)
	towns := drivesim.Towns()
	img := image.NewRGBA(image.Rect(0, 0, 2*panel, 2*panel))
	fill(img, color.RGBA{245, 245, 245, 255})

	routeColors := []color.RGBA{{200, 40, 40, 255}, {40, 60, 200, 255}}
	for ti, town := range towns {
		ox := (ti % 2) * panel
		oy := (ti / 2) * panel

		// Panel frame.
		frame := color.RGBA{180, 180, 180, 255}
		drawRect(img, ox, oy, panel, panel, frame)

		// Town bounding box over all routes.
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, route := range town.Routes {
			for _, p := range route.Points() {
				minX = math.Min(minX, p.X)
				minY = math.Min(minY, p.Y)
				maxX = math.Max(maxX, p.X)
				maxY = math.Max(maxY, p.Y)
			}
		}
		scale := math.Min(
			float64(panel-2*margin)/math.Max(maxX-minX, 1),
			float64(panel-2*margin)/math.Max(maxY-minY, 1))
		toPx := func(p drivesim.Vec2) (int, int) {
			return ox + margin + int((p.X-minX)*scale),
				oy + panel - margin - int((p.Y-minY)*scale)
		}

		for ri, route := range town.Routes {
			col := routeColors[ri%len(routeColors)]
			pts := route.Points()
			for i := 1; i < len(pts); i++ {
				x0, y0 := toPx(pts[i-1])
				x1, y1 := toPx(pts[i])
				drawLine(img, x0, y0, x1, y1, col)
			}
			// Start disc and end cross.
			sx, sy := toPx(pts[0])
			drawDisc(img, sx, sy, 5, col)
			ex, ey := toPx(pts[len(pts)-1])
			drawCross(img, ex, ey, 6, col)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	fmt.Printf("wrote %s (Fig. 5 analog: %d towns, 2 routes each)\n", path, len(towns))
	return nil
}

func fill(img *image.RGBA, c color.RGBA) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			img.SetRGBA(x, y, c)
		}
	}
}

func drawRect(img *image.RGBA, x, y, w, h int, c color.RGBA) {
	drawLine(img, x, y, x+w-1, y, c)
	drawLine(img, x, y+h-1, x+w-1, y+h-1, c)
	drawLine(img, x, y, x, y+h-1, c)
	drawLine(img, x+w-1, y, x+w-1, y+h-1, c)
}

// drawLine is Bresenham's algorithm with a 2px brush.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	errAcc := dx + dy
	for {
		img.SetRGBA(x0, y0, c)
		img.SetRGBA(x0+1, y0, c)
		img.SetRGBA(x0, y0+1, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * errAcc
		if e2 >= dy {
			errAcc += dy
			x0 += sx
		}
		if e2 <= dx {
			errAcc += dx
			y0 += sy
		}
	}
}

func drawDisc(img *image.RGBA, cx, cy, r int, c color.RGBA) {
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				img.SetRGBA(cx+x, cy+y, c)
			}
		}
	}
}

func drawCross(img *image.RGBA, cx, cy, r int, c color.RGBA) {
	for d := -r; d <= r; d++ {
		img.SetRGBA(cx+d, cy+d, c)
		img.SetRGBA(cx+d+1, cy+d, c)
		img.SetRGBA(cx+d, cy-d, c)
		img.SetRGBA(cx+d+1, cy-d, c)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
