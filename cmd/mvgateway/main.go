// Command mvgateway runs the multi-shard serving gateway: N independent
// multi-version inference shards behind a consistent-hash router with
// health-aware failover, per-client retry budgets, front-door load shedding
// and a queue/latency-driven autoscaler.
//
// Usage:
//
//	mvgateway serve -shards 4 -addr :8090    # gateway + in-process shards
//	mvgateway loadgen -target http://host:8090 -rate 1000 -duration 10s
//	mvgateway demo                           # self-contained 10x resilience demo:
//	                                         # shard compromise + whole-shard
//	                                         # drain/rejuvenate under load
//
// Telemetry flags are shared with the other binaries; the demo always builds
// an in-process telemetry runtime because per-shard health engines (the
// failover signal) ride the span stream.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvml/internal/gateway"
	"mvml/internal/health"
	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/obs/tsdb"
	"mvml/internal/serve"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvgateway:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mvgateway serve   [flags]   run the gateway over in-process shards
  mvgateway loadgen [flags]   open-loop load against a running gateway
  mvgateway demo    [flags]   self-contained multi-shard resilience demo
run "mvgateway <subcommand> -h" for flags`)
}

// gwFlags bundles the shard-fleet and gateway knobs shared by serve and demo.
type gwFlags struct {
	shards      *int
	versions    *int
	workers     *int
	queue       *int
	batch       *int
	timeout     *time.Duration
	seed        *uint64
	fullModels  *bool
	maxInflight *int
	retryBurst  *float64
	autoscale   *bool
	maxWorkers  *int
}

func registerGwFlags(fs *flag.FlagSet) *gwFlags {
	def := serve.DefaultConfig()
	return &gwFlags{
		shards:      fs.Int("shards", 4, "number of serving shards"),
		versions:    fs.Int("versions", def.Versions, "ensemble size per shard"),
		workers:     fs.Int("workers", def.WorkersPerVersion, "initial worker replicas per version per shard"),
		queue:       fs.Int("queue", def.QueueDepth, "per-shard admission queue depth"),
		batch:       fs.Int("batch", def.MaxBatch, "per-shard micro-batch flush size"),
		timeout:     fs.Duration("timeout", def.RequestTimeout, "per-request deadline"),
		seed:        fs.Uint64("seed", def.Seed, "root random seed (all shards share it: identical ensembles)"),
		fullModels:  fs.Bool("full-models", false, "serve the full three-architecture ensemble instead of the fast profile"),
		maxInflight: fs.Int("max-inflight", 512, "gateway load-shedding bound on concurrently routed requests"),
		retryBurst:  fs.Float64("retry-burst", 10, "per-client retry budget cap"),
		autoscale:   fs.Bool("autoscale", true, "run the queue/latency-driven autoscaler"),
		maxWorkers:  fs.Int("max-workers", 4, "autoscaler ceiling on per-version workers per shard"),
	}
}

// fastNet is the demo model profile: a minimal flatten+dense classifier with
// identical weights across versions (fixed internal seed). It preserves every
// ensemble property the gateway exercises — agreement, divergence under
// compromise, rejuvenation — while being fast enough that a single CPU can
// drive a 4-shard fleet at 4-figure request rates. -full-models restores the
// real three-architecture ensemble.
func fastNet(version int, _ *xrand.Rand) (*nn.Network, error) {
	r := xrand.New(1234)
	return &nn.Network{
		Name: fmt.Sprintf("fast-%d", version),
		Layers: []nn.Layer{
			nn.NewFlatten("flat"),
			nn.NewDense("fc", nn.InputChannels*nn.InputSize*nn.InputSize, signs.NumClasses, r),
		},
	}, nil
}

// shardConfig builds the serve.Config for one shard of the fleet.
func (gf *gwFlags) shardConfig(label string, healthOpts *health.Options) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Versions = *gf.versions
	cfg.WorkersPerVersion = *gf.workers
	cfg.QueueDepth = *gf.queue
	cfg.MaxBatch = *gf.batch
	cfg.RequestTimeout = *gf.timeout
	cfg.Seed = *gf.seed
	cfg.ShardLabel = label
	cfg.Health = healthOpts
	if !*gf.fullModels {
		cfg.NewNetwork = fastNet
		cfg.InjectLayer = 0  // the fast net's only parameterised layer
		cfg.InjectCount = 64 // enough perturbed weights to reliably flip argmax
	}
	return cfg
}

// buildFleet constructs the gateway and its initial shards. The returned
// spawn function builds autoscaler shards with the same configuration. p99,
// when non-nil, feeds the autoscaler's latency signal from the tsdb
// recording rule instead of the gateway's own window.
func (gf *gwFlags) buildFleet(rt *obs.Runtime, healthOpts *health.Options, p99 func() time.Duration) (*gateway.Gateway, []*gateway.LocalShard, func(id string) (gateway.ShardControl, error), error) {
	gw := gateway.New(gateway.Config{
		MaxInflight: *gf.maxInflight,
		RetryBurst:  *gf.retryBurst,
	}, rt)
	spawn := func(id string) (gateway.ShardControl, error) {
		srv, err := serve.New(gf.shardConfig(id, healthOpts), rt)
		if err != nil {
			return nil, err
		}
		return gateway.NewLocalShard(srv)
	}
	var shards []*gateway.LocalShard
	for i := 0; i < *gf.shards; i++ {
		sc, err := spawn(fmt.Sprintf("shard-%d", i))
		if err != nil {
			for _, sh := range shards {
				sh.Close()
			}
			return nil, nil, nil, err
		}
		sh := sc.(*gateway.LocalShard)
		shards = append(shards, sh)
		if err := gw.AddShard(sh); err != nil {
			for _, s := range shards {
				s.Close()
			}
			return nil, nil, nil, err
		}
	}
	if *gf.autoscale {
		gw.StartAutoscaler(gateway.AutoscalerConfig{
			MaxWorkers: *gf.maxWorkers,
			P99Source:  p99,
			SpawnShard: spawn,
			OnEvent: func(ev gateway.ScaleEvent) {
				fmt.Fprintf(os.Stderr, "mvgateway: autoscale %s shard=%s workers=%d (%s)\n",
					ev.Kind, ev.Shard, ev.Workers, ev.Reason)
			},
		})
	}
	return gw, shards, spawn, nil
}

// demoHealthOptions force-enables per-shard health engines: health-aware
// failover is the point of the gateway, so the demo does not make it opt-in.
func demoHealthOptions(hcli *health.CLI) *health.Options {
	if opts := hcli.Options(); opts != nil {
		return opts
	}
	d := health.DefaultOptions()
	return &d
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("mvgateway serve", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "HTTP listen address")
	gf := registerGwFlags(fs)
	var tele obs.CLI
	tele.RegisterFlags(fs)
	var hcli health.CLI
	hcli.RegisterFlags(fs)
	var tcli tsdb.CLI
	tcli.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tele.InfoLabel("shards", fmt.Sprintf("%d", *gf.shards))
	rt, err := tele.Start()
	if err != nil {
		return err
	}
	if rt == nil {
		// Health engines (the failover signal) ride the span stream, so the
		// gateway always runs a local runtime even with telemetry flags off.
		rt = obs.NewRuntime(0)
	}
	tcli.Attach(rt, *demoHealthOptions(&hcli))
	defer func() {
		if err := tcli.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "mvgateway:", err)
		}
		if err := tele.Finish(map[string]any{"command": "gateway-serve"}); err != nil {
			fmt.Fprintln(os.Stderr, "mvgateway:", err)
		}
	}()

	gw, shards, _, err := gf.buildFleet(rt, demoHealthOptions(&hcli), tcli.P99Source())
	if err != nil {
		return err
	}
	defer func() {
		gw.Close()
		for _, sh := range shards {
			sh.Close()
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mvgateway: routing %d shards on http://%s\n", *gf.shards, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "mvgateway: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("mvgateway loadgen", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8090", "base URL of the gateway")
	def := serve.DefaultLoadConfig()
	rate := fs.Float64("rate", 1000, "open-loop request rate (req/s)")
	duration := fs.Duration("duration", def.Duration, "load duration")
	timeout := fs.Duration("request-timeout", def.Timeout, "per-request HTTP timeout")
	seed := fs.Uint64("seed", def.Seed, "request-stream seed")
	client := fs.String("client", "loadgen", "X-Client-ID for retry budgeting")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := serve.RunLoad(*target, serve.LoadConfig{
		Rate: *rate, Duration: *duration, Timeout: *timeout, Seed: *seed, ClientID: *client,
	})
	if err != nil {
		return err
	}
	return printReport(rep, *jsonOut)
}

func printReport(rep *serve.LoadReport, asJSON bool) error {
	if asJSON {
		return json.NewEncoder(os.Stdout).Encode(rep)
	}
	fmt.Println(rep)
	return nil
}

// cmdDemo is the multi-shard resilience demonstration: a gateway over N
// in-process shards under open-loop load an order of magnitude beyond the
// single-shard demo workload, with two mid-run faults — one version of one
// shard compromised (the shard's health engine degrades it, routing fails
// over, reactive rejuvenation heals it) and one whole shard drained,
// rejuvenated and reinstated (ring failover end to end). It exits non-zero
// if any request failed; degraded answers and 429 shedding are designed
// behaviours, failures are not.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("mvgateway demo", flag.ExitOnError)
	gf := registerGwFlags(fs)
	rate := fs.Float64("rate", 1000, "open-loop request rate (req/s)")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	baseline := fs.Float64("baseline-rps", 100,
		"single-shard reference throughput for the scale ratio (the mvserve demo's default workload)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	var tele obs.CLI
	tele.RegisterFlags(fs)
	var hcli health.CLI
	hcli.RegisterFlags(fs)
	var tcli tsdb.CLI
	tcli.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tele.InfoLabel("shards", fmt.Sprintf("%d", *gf.shards))
	rt, err := tele.Start()
	if err != nil {
		return err
	}
	if rt == nil {
		rt = obs.NewRuntime(0)
	}
	tcli.Attach(rt, *demoHealthOptions(&hcli))

	gw, shards, _, err := gf.buildFleet(rt, demoHealthOptions(&hcli), tcli.P99Source())
	if err != nil {
		return err
	}
	defer func() {
		gw.Close()
		for _, sh := range shards {
			sh.Close()
		}
	}()
	if len(shards) > 0 {
		hcli.Observe(shards[0].Server().Health())
		tcli.Observe(shards[0].Server().Health())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "mvgateway demo: %d shards on %s, load %.0f req/s for %v\n",
		len(shards), base, *rate, *duration)

	// Fault 1 (t/3): compromise one version of shard-0. Its health engine
	// sees the divergence, the shard drops to degraded (deprioritised in
	// routing), and the reactive trigger rejuvenates the version.
	go func() {
		time.Sleep(*duration / 3)
		fmt.Fprintln(os.Stderr, "mvgateway demo: compromising shard-0 version 0")
		if len(shards) > 0 {
			if err := shards[0].Compromise(0); err != nil {
				fmt.Fprintln(os.Stderr, "mvgateway demo:", err)
			}
		}
	}()
	// Fault 2 (2t/3): take a whole shard through zero-downtime maintenance —
	// drain (ring successors absorb its keyspace), rejuvenate every version,
	// reinstate. No request should fail across the transition.
	go func() {
		time.Sleep(2 * *duration / 3)
		if len(shards) < 2 {
			return
		}
		sh := shards[1]
		fmt.Fprintf(os.Stderr, "mvgateway demo: draining %s for full rejuvenation\n", sh.ID())
		sh.SetDraining(true)
		if err := sh.Rejuvenate(serve.RejuvManual); err != nil {
			fmt.Fprintln(os.Stderr, "mvgateway demo:", err)
		}
		sh.SetDraining(false)
		fmt.Fprintf(os.Stderr, "mvgateway demo: %s rejuvenated and reinstated\n", sh.ID())
	}()

	rep, err := serve.RunLoad(base, serve.LoadConfig{
		Rate: *rate, Duration: *duration, Timeout: 5 * time.Second,
		Seed: *gf.seed, ClientID: "demo",
	})
	if err != nil {
		return err
	}
	if err := printReport(rep, *jsonOut); err != nil {
		return err
	}

	reg := rt.Metrics()
	fmt.Printf("gateway: %d answered by owner, %d rerouted (health/drain), %d failovers, %d budget retries, %d shed (429), %d exhausted\n",
		reg.Counter("mv_gateway_routed_total").Value(),
		reg.Counter("mv_gateway_rerouted_total").Value(),
		reg.Counter("mv_gateway_failovers_total").Value(),
		reg.Counter("mv_gateway_retries_total").Value(),
		reg.Counter("mv_gateway_shed_total").Value(),
		reg.Counter("mv_gateway_failed_total").Value())
	rejuv := uint64(0)
	for _, kind := range []string{serve.RejuvReactive, serve.RejuvProactive, serve.RejuvManual} {
		rejuv += reg.Counter("mvserve_rejuvenations_total", "kind", kind).Value()
	}
	fmt.Printf("fleet: %d shards live, %d rejuvenations (all kinds)\n", len(gw.Shards()), rejuv)
	if *baseline > 0 {
		fmt.Printf("scale: %.1f req/s answered = %.1fx the single-shard reference (%.0f req/s)\n",
			rep.Throughput, rep.Throughput / *baseline, *baseline)
	}

	if err := hcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "mvgateway:", err)
	}
	if err := tcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "mvgateway:", err)
	}
	if err := tele.Finish(map[string]any{"command": "gateway-demo", "report": rep}); err != nil {
		fmt.Fprintln(os.Stderr, "mvgateway:", err)
	}
	if rep.Failed > 0 || rep.Errors > 0 {
		return fmt.Errorf("demo saw %d failed and %d transport-error requests", rep.Failed, rep.Errors)
	}
	fmt.Println("demo passed: zero failed requests across shard compromise, drain and rejuvenation")
	return nil
}
