// Command mvhealth replays a span export (the -spans-out JSONL stream of the
// instrumented binaries) through the streaming health engine offline and
// renders the resulting health report: the verdict timeline, incident
// windows, SLO budget consumption, detected change-points, the online α
// trajectory, and a reliability projection that substitutes the measured α
// into the paper's three-version failure model.
//
// Because the engine advances only on span timestamps, the replayed report
// reproduces exactly what a live engine attached to the same stream decided.
//
// Usage:
//
//	mvhealth report -in spans.jsonl                    # text report
//	mvhealth report -in spans.jsonl -format json       # full report as JSON
//	mvhealth report -in spans.jsonl -require-incident  # CI gate (see below)
//
// With -require-incident, mvhealth exits non-zero unless the stream shows a
// full detected-incident arc: at least one non-healthy incident window, at
// least one rejuvenation, some version going critical and later returning to
// healthy, and a finite online α — the CI smoke test's assertion that
// compromise → detection → rejuvenation → recovery actually happened and
// was measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/reliability"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvhealth:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mvhealth report -in spans.jsonl [-format text|json] [-require-incident]
run "mvhealth report -h" for all flags`)
}

// projection compares the paper's offline α against the stream's measured α
// inside the three-version failure model (Eq. 1), holding p at the Table IV
// default.
type projection struct {
	P             float64 `json:"p"`
	AlphaOffline  float64 `json:"alpha_offline"`
	AlphaMeasured float64 `json:"alpha_measured"`
	FailOffline   float64 `json:"failure_probability_offline_alpha"`
	FailMeasured  float64 `json:"failure_probability_measured_alpha"`
}

func project(alpha float64) projection {
	base := reliability.DefaultParams()
	meas := base.WithAlpha(alpha)
	return projection{
		P:             base.P,
		AlphaOffline:  base.Alpha,
		AlphaMeasured: meas.Alpha,
		FailOffline:   reliability.EgeFailureProbability(base.P, base.Alpha),
		FailMeasured:  reliability.EgeFailureProbability(meas.P, meas.Alpha),
	}
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("mvhealth report", flag.ExitOnError)
	in := fs.String("in", "spans.jsonl", "span JSONL export to replay")
	format := fs.String("format", "text", "output format: text or json")
	requireIncident := fs.Bool("require-incident", false,
		"exit non-zero unless the stream shows an incident window, a rejuvenation, and a final healthy verdict")
	latencySLO := fs.Duration("latency-slo", 250*time.Millisecond,
		"per-request latency objective feeding the latency SLO")
	availability := fs.Float64("availability", 0.99, "availability SLO target in (0,1)")
	window := fs.Duration("window", 2*time.Minute, "SLO error-budget window")
	divergenceWindow := fs.Int("divergence-window", 0,
		"per-version disagreement window in rounds (0 = engine default)")
	divergenceThreshold := fs.Float64("divergence-threshold", 0,
		"windowed disagreement rate marking a version critical (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	recs, err := obs.ReadSpans(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s holds no spans", *in)
	}

	opts := health.DefaultOptions()
	opts.LatencyObjective = latencySLO.Seconds()
	opts.DivergenceWindow = *divergenceWindow
	opts.DivergenceThreshold = *divergenceThreshold
	for i := range opts.Objectives {
		opts.Objectives[i].Window = window.Seconds()
		if opts.Objectives[i].Name == "availability" {
			opts.Objectives[i].Target = *availability
		}
	}
	rep := health.Replay(recs, opts)

	var proj *projection
	if rep.AlphaKnown {
		p := project(rep.AlphaFinal)
		proj = &p
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Input       string         `json:"input"`
			Report      *health.Report `json:"report"`
			Reliability *projection    `json:"reliability_projection,omitempty"`
		}{*in, rep, proj}); err != nil {
			return err
		}
	} else {
		renderText(*in, rep, proj)
	}

	if *requireIncident {
		return checkIncidentArc(rep)
	}
	return nil
}

// checkIncidentArc is the CI gate: the replay must contain a detected
// incident window, a rejuvenation, a version that went critical and later
// recovered to healthy, and a measured (finite) online α.
func checkIncidentArc(rep *health.Report) error {
	switch {
	case len(rep.Incidents) == 0:
		return fmt.Errorf("require-incident: no incident window detected over %d spans", rep.Spans)
	case len(rep.Rejuvenations) == 0:
		return fmt.Errorf("require-incident: no rejuvenation observed")
	case !rep.AlphaKnown:
		return fmt.Errorf("require-incident: online alpha never measured (%d rounds decided)", rep.RoundsDecided)
	}
	// The arc itself: some version component degrades to critical, and later
	// transitions back to healthy (the post-rejuvenation reset).
	critical := map[string]bool{}
	for _, tr := range rep.Timeline {
		if !strings.HasPrefix(tr.Component, "version:") {
			continue
		}
		if tr.To == health.Critical {
			critical[tr.Component] = true
		}
		if tr.To == health.Healthy && critical[tr.Component] {
			return nil
		}
	}
	return fmt.Errorf("require-incident: no version went critical and recovered to healthy")
}

func renderText(in string, rep *health.Report, proj *projection) {
	fmt.Printf("%s · %d spans over %s · verdict %s\n\n",
		in, rep.Spans, dur(rep.Horizon), rep.Final.Overall)

	fmt.Printf("voting: %d rounds decided, %d skipped\n", rep.RoundsDecided, rep.RoundsSkipped)
	if rep.AlphaKnown {
		fmt.Printf("online alpha: %.4f over %d pair(s)\n", rep.AlphaFinal, len(rep.AlphaPairs))
		for _, p := range rep.AlphaPairs {
			fmt.Printf("  %s ~ %s: %.4f (%d simultaneous / %d max)\n", p.A, p.B, p.Alpha, p.Both, p.MaxN)
		}
	} else {
		fmt.Println("online alpha: unmeasured (no disagreements in stream)")
	}

	fmt.Println("\nSLO error budgets:")
	for _, s := range rep.Final.SLOs {
		state := "ok"
		if s.Alerting {
			state = "ALERTING"
		}
		fmt.Printf("  %-13s target %.3f · %d good / %d bad · budget %+.2f · burn %.2f/%.2f (short/long) · %d alert(s) · %s\n",
			s.Objective.Name, s.Objective.Target, s.Good, s.Bad,
			s.BudgetRemaining, s.BurnShort, s.BurnLong, s.Alerts, state)
	}

	if len(rep.Incidents) > 0 {
		fmt.Println("\nincident windows:")
		for _, w := range rep.Incidents {
			state := "unresolved at end of stream"
			if w.Resolved {
				state = "resolved"
			}
			fmt.Printf("  %s → %s · peak %s · %s\n", dur(w.Start), dur(w.End), w.Peak, state)
		}
	} else {
		fmt.Println("\nincident windows: none")
	}

	if len(rep.ChangePoints) > 0 {
		fmt.Println("\nchange-points:")
		for _, cp := range rep.ChangePoints {
			fmt.Printf("  %s · %s · CUSUM %.1f\n", dur(cp.T), cp.Stream, cp.Stat)
		}
	}
	if len(rep.Rejuvenations) > 0 {
		fmt.Println("\nrejuvenations:")
		for _, r := range rep.Rejuvenations {
			fmt.Printf("  %s · %s (%s)\n", dur(r.T), r.Version, r.Kind)
		}
	}

	if len(rep.Timeline) > 0 {
		fmt.Println("\nverdict timeline:")
		for _, tr := range rep.Timeline {
			fmt.Printf("  %s · %-16s %s → %s · %s\n", dur(tr.T), tr.Component, tr.From, tr.To, tr.Reason)
		}
		if rep.TimelineTrunc > 0 {
			fmt.Printf("  … %d transitions truncated\n", rep.TimelineTrunc)
		}
	}

	if len(rep.AlphaTraj) > 0 {
		fmt.Println("\nalpha trajectory:")
		for _, pt := range rep.AlphaTraj {
			fmt.Printf("  %s · round %d · alpha %.4f\n", dur(pt.T), pt.Rounds, pt.Alpha)
		}
	}

	if proj != nil {
		fmt.Printf("\nreliability projection (Eq. 1, p = %.4f):\n", proj.P)
		fmt.Printf("  offline  alpha %.4f → failure probability %.6f\n", proj.AlphaOffline, proj.FailOffline)
		fmt.Printf("  measured alpha %.4f → failure probability %.6f\n", proj.AlphaMeasured, proj.FailMeasured)
	}
}

// dur renders seconds on the span clock with a unit fitting its magnitude.
func dur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}
