// Command mvtrace analyses span traces exported by the instrumented binaries
// (the -spans-out JSONL stream): per-stage latency quantiles across every
// trace, and a text waterfall reconstructing one request's path through
// admission → queue → batch → per-version forwards → vote → reply.
//
// Usage:
//
//	mvtrace summary   -in spans.jsonl            # p50/p95/p99 per span kind
//	mvtrace top       -in spans.jsonl -n 10      # slowest retained traces
//	mvtrace waterfall -in spans.jsonl            # richest trace, as a tree
//	mvtrace waterfall -in spans.jsonl -trace 42  # a specific trace id
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mvml/internal/obs"
	"mvml/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "waterfall":
		err = cmdWaterfall(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mvtrace summary   -in spans.jsonl             per-stage latency quantiles
  mvtrace top       -in spans.jsonl [-n K]      K slowest retained traces
  mvtrace waterfall -in spans.jsonl [-trace N]  text waterfall for one trace
run "mvtrace <subcommand> -h" for flags`)
}

// load reads a -spans-out JSONL export.
func load(path string) ([]obs.SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := obs.ReadSpans(f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s holds no spans", path)
	}
	return recs, nil
}

// kindSummary is one span kind's latency digest, the JSON unit of
// `mvtrace summary -format json` (consumed by CI and mvhealth without text
// parsing).
type kindSummary struct {
	Kind string `json:"kind"`
	// Shard is set when the export carries multi-shard (gateway) spans:
	// stages are then grouped per shard label, "-" for spans without one
	// (the gateway's own route/shed/scale spans).
	Shard string  `json:"shard,omitempty"`
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("mvtrace summary", flag.ExitOnError)
	in := fs.String("in", "spans.jsonl", "span JSONL export to analyse")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	recs, err := load(*in)
	if err != nil {
		return err
	}

	// A single-server export groups by span kind alone; when any span carries
	// a "shard" attribute (a gateway export over a shared sink) every stage is
	// grouped per shard, so per-shard latency asymmetry — the signal the
	// autoscaler and failover act on — stays visible in the summary.
	type group struct{ kind, shard string }
	byShard := false
	for _, r := range recs {
		if _, ok := r.Attrs["shard"]; ok {
			byShard = true
			break
		}
	}
	byKind := map[group][]float64{}
	for _, r := range recs {
		g := group{kind: r.Kind}
		if byShard {
			g.shard = "-"
			if v, ok := r.Attrs["shard"]; ok {
				g.shard = fmt.Sprint(v)
			}
		}
		byKind[g] = append(byKind[g], r.Duration())
	}
	kinds := make([]group, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	// Widest stages first, so the table reads as a latency budget; equal
	// stages sort by kind then shard for stable output.
	sort.Slice(kinds, func(i, j int) bool {
		a, b := quantile(byKind[kinds[i]], 0.50), quantile(byKind[kinds[j]], 0.50)
		if a != b {
			return a > b
		}
		if kinds[i].kind != kinds[j].kind {
			return kinds[i].kind < kinds[j].kind
		}
		return kinds[i].shard < kinds[j].shard
	})

	traces := map[uint64]struct{}{}
	for _, r := range recs {
		traces[r.Trace] = struct{}{}
	}
	cov := coverage(recs)
	rows := make([]kindSummary, 0, len(kinds))
	for _, k := range kinds {
		d := byKind[k]
		sort.Float64s(d)
		rows = append(rows, kindSummary{
			Kind: k.kind, Shard: k.shard, Count: len(d),
			P50: quantile(d, 0.50), P95: quantile(d, 0.95),
			P99: quantile(d, 0.99), Max: d[len(d)-1],
		})
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Spans    int           `json:"spans"`
			Traces   int           `json:"traces"`
			Coverage float64       `json:"coverage"`
			Input    string        `json:"input"`
			Kinds    []kindSummary `json:"kinds"`
		}{len(recs), len(traces), cov, *in, rows})
	}

	fmt.Printf("%d spans · %d traces · %s\n", len(recs), len(traces), *in)
	if cov < 0.999 {
		fmt.Printf("coverage ~%.0f%% of emitted spans retained (tail sampling and/or ring drops)\n", cov*100)
	}
	fmt.Println()
	if byShard {
		fmt.Printf("%-14s %-10s %8s %12s %12s %12s %12s\n", "kind", "shard", "count", "p50", "p95", "p99", "max")
		for _, row := range rows {
			fmt.Printf("%-14s %-10s %8d %12s %12s %12s %12s\n", row.Kind, row.Shard, row.Count,
				dur(row.P50), dur(row.P95), dur(row.P99), dur(row.Max))
		}
		return nil
	}
	fmt.Printf("%-14s %8s %12s %12s %12s %12s\n", "kind", "count", "p50", "p95", "p99", "max")
	for _, row := range rows {
		fmt.Printf("%-14s %8d %12s %12s %12s %12s\n", row.Kind, row.Count,
			dur(row.P50), dur(row.P95), dur(row.P99), dur(row.Max))
	}
	return nil
}

// coverage estimates the fraction of emitted spans present in the export.
// Span ids are allocated from a dense per-process counter, so the gap
// between the smallest and largest id seen bounds how many spans existed;
// anything missing was sampled out or dropped by the ring.
func coverage(recs []obs.SpanRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	minID, maxID := recs[0].ID, recs[0].ID
	for _, r := range recs {
		if r.ID < minID {
			minID = r.ID
		}
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	emitted := maxID - minID + 1
	if emitted == 0 {
		return 1
	}
	cov := float64(len(recs)) / float64(emitted)
	if cov > 1 {
		cov = 1
	}
	return cov
}

// traceTop is one row of `mvtrace top`: a retained trace ranked by root
// duration, with its slowest child stage called out.
type traceTop struct {
	Trace       uint64  `json:"trace"`
	Kind        string  `json:"kind"`
	Seconds     float64 `json:"seconds"`
	Spans       int     `json:"spans"`
	Slowest     string  `json:"slowest_stage,omitempty"`
	SlowestSecs float64 `json:"slowest_stage_seconds,omitempty"`
	Error       string  `json:"error,omitempty"`
	Shard       string  `json:"shard,omitempty"`
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("mvtrace top", flag.ExitOnError)
	in := fs.String("in", "spans.jsonl", "span JSONL export to analyse")
	n := fs.Int("n", 10, "how many traces to list")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	recs, err := load(*in)
	if err != nil {
		return err
	}

	byTrace := map[uint64][]obs.SpanRecord{}
	for _, r := range recs {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	rows := make([]traceTop, 0, len(byTrace))
	for id, spans := range byTrace {
		ids := map[uint64]bool{}
		for _, r := range spans {
			ids[r.ID] = true
		}
		row := traceTop{Trace: id, Spans: len(spans)}
		for _, r := range spans {
			isRoot := r.Parent == 0 || !ids[r.Parent]
			if isRoot && r.Duration() >= row.Seconds {
				row.Seconds = r.Duration()
				row.Kind = r.Kind
				if v, ok := r.Attrs["shard"]; ok {
					row.Shard = fmt.Sprint(v)
				}
			}
			if !isRoot && r.Duration() > row.SlowestSecs {
				row.SlowestSecs = r.Duration()
				row.Slowest = r.Kind
			}
			if v, ok := r.Attrs["error"]; ok && row.Error == "" {
				row.Error = fmt.Sprint(v)
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Seconds != rows[j].Seconds {
			return rows[i].Seconds > rows[j].Seconds
		}
		return rows[i].Trace < rows[j].Trace
	})
	if len(rows) > *n {
		rows = rows[:*n]
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Traces int        `json:"traces"`
			Input  string     `json:"input"`
			Top    []traceTop `json:"top"`
		}{len(byTrace), *in, rows})
	}

	fmt.Printf("top %d of %d traces · %s\n\n", len(rows), len(byTrace), *in)
	fmt.Printf("%10s %-14s %12s %6s %-22s %s\n", "trace", "kind", "duration", "spans", "slowest stage", "error")
	for _, row := range rows {
		slow := "-"
		if row.Slowest != "" {
			slow = fmt.Sprintf("%s (%s)", row.Slowest, dur(row.SlowestSecs))
		}
		kind := row.Kind
		if row.Shard != "" {
			kind += "@" + row.Shard
		}
		fmt.Printf("%10d %-14s %12s %6d %-22s %s\n",
			row.Trace, kind, dur(row.Seconds), row.Spans, slow, row.Error)
	}
	return nil
}

// quantile is the nearest-rank order statistic over a sorted (or about to be
// sorted) sample — exact, not estimated, since the full export is in memory.
func quantile(d []float64, q float64) float64 {
	if !sort.Float64sAreSorted(d) {
		sort.Float64s(d)
	}
	return stats.NearestRank(d, q)
}

// dur renders seconds with a unit fitting its magnitude.
func dur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

func cmdWaterfall(args []string) error {
	fs := flag.NewFlagSet("mvtrace waterfall", flag.ExitOnError)
	in := fs.String("in", "spans.jsonl", "span JSONL export to analyse")
	traceID := fs.Uint64("trace", 0, "trace id to render (default: the trace with the most spans)")
	width := fs.Int("width", 48, "bar width in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, err := load(*in)
	if err != nil {
		return err
	}

	if *traceID == 0 {
		counts := map[uint64]int{}
		for _, r := range recs {
			counts[r.Trace]++
		}
		best, bestN := uint64(0), 0
		for t, n := range counts {
			if n > bestN || (n == bestN && t < best) {
				best, bestN = t, n
			}
		}
		*traceID = best
	}
	var spans []obs.SpanRecord
	for _, r := range recs {
		if r.Trace == *traceID {
			spans = append(spans, r)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %d not found in %s", *traceID, *in)
	}

	// Index parent → children; roots are spans whose parent is absent.
	ids := map[uint64]bool{}
	for _, r := range spans {
		ids[r.ID] = true
	}
	children := map[uint64][]obs.SpanRecord{}
	var roots []obs.SpanRecord
	for _, r := range spans {
		if r.Parent != 0 && ids[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	byStart := func(s []obs.SpanRecord) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Start != s[j].Start {
				return s[i].Start < s[j].Start
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	t0, t1 := spans[0].Start, spans[0].End
	for _, r := range spans {
		if r.Start < t0 {
			t0 = r.Start
		}
		if r.End > t1 {
			t1 = r.End
		}
	}
	total := t1 - t0
	if total <= 0 {
		total = 1
	}

	fmt.Printf("trace %d · %d spans · %s\n\n", *traceID, len(spans), dur(t1-t0))
	var render func(r obs.SpanRecord, depth int)
	render = func(r obs.SpanRecord, depth int) {
		label := strings.Repeat("  ", depth) + r.Kind
		if v, ok := r.Attrs["version"]; ok {
			label += fmt.Sprintf("[%v]", v)
		}
		off := int(float64(*width) * (r.Start - t0) / total)
		bar := int(float64(*width) * r.Duration() / total)
		if bar < 1 {
			bar = 1
		}
		if off+bar > *width {
			bar = *width - off
			if bar < 1 {
				bar = 1
			}
		}
		fmt.Printf("%-26s %s%s%s %s\n", label,
			strings.Repeat(" ", off), strings.Repeat("█", bar),
			strings.Repeat(" ", *width-off-bar), dur(r.Duration()))
		for _, c := range children[r.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return nil
}
