// Command mvmlbench regenerates the reliability-side evaluation of the
// paper: Table II (model accuracies and fitted p/p'/α), Table III (state
// reliabilities), Table IV (model inputs), Table V (steady-state reliability
// of the six configurations) and the Fig. 4 parameter sweeps.
//
// Usage:
//
//	mvmlbench -table 2 [-quick]     # fault-injection experiment
//	mvmlbench -table 3|4|5          # reliability tables
//	mvmlbench -fig a|b|c|d|e|f      # Fig. 4 sweeps
//	mvmlbench -all [-quick]         # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"mvml/internal/experiments"
	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/petri"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (2-5)")
	fig := flag.String("fig", "", "Fig. 4 sweep letter (a-f)")
	nversion := flag.Bool("nversion", false, "run the N-version/voting-scheme extension study")
	diversity := flag.Bool("diversity", false, "run the diversity-source extension study (trains 9 models)")
	campaign := flag.Bool("campaign", false, "run the per-layer fault-sensitivity campaign (trains 1 model)")
	inferbench := flag.Bool("inferbench", false, "measure the fused/packed batched-GEMM inference paths against the per-sample loop")
	int8bench := flag.Bool("int8", false, "with -inferbench: also measure the int8 quantized path and its float-agreement rate")
	all := flag.Bool("all", false, "run every reliability-side experiment")
	quick := flag.Bool("quick", false, "reduced dataset/training budget for Table II")
	workers := flag.Int("workers", 0, "concurrent replications for fan-out experiments (0 = GOMAXPROCS; results are worker-count-invariant)")
	seed := flag.Uint64("seed", 1, "random seed for simulations")
	horizon := flag.Float64("horizon", 0, "DSPN simulation horizon in model seconds (0 = default)")
	var tele obs.CLI
	tele.RegisterFlags(flag.CommandLine)
	var hcli health.CLI
	hcli.RegisterFlags(flag.CommandLine)
	flag.Parse()

	tele.InfoLabel("workers", fmt.Sprintf("%d", *workers))
	rt, err := tele.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvmlbench:", err)
		os.Exit(1)
	}
	hcli.Attach(rt)
	runErr := run(*table, *fig, *nversion, *diversity, *campaign, *inferbench, *int8bench, *all, *quick, *workers, *seed, *horizon, rt)
	if err := hcli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "mvmlbench:", err)
	}
	if err := tele.Finish(map[string]any{
		"command": "mvmlbench", "seed": *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "mvmlbench:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvmlbench:", runErr)
		os.Exit(1)
	}
}

func run(table int, fig string, nversion, diversity, campaign, inferbench, int8bench, all, quick bool, workers int, seed uint64, horizon float64, rt *obs.Runtime) error {
	rng := xrand.New(seed)
	params := reliability.DefaultParams()
	simCfg := reliability.DefaultSimConfig()
	if horizon > 0 {
		simCfg = petri.SimConfig{Horizon: horizon, Warmup: horizon / 100}
	}
	simCfg.Metrics = rt.Metrics()
	simCfg.Tracer = rt.Tracer()

	ran := false
	if table == 2 || all {
		ran = true
		cfg := experiments.DefaultTableIIConfig()
		if quick {
			cfg = experiments.QuickTableIIConfig()
		}
		res, err := experiments.RunTableII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		// Feed the fitted parameters into the downstream tables when
		// running everything.
		if all {
			params = res.Params()
		}
	}
	if table == 3 || all {
		ran = true
		res, err := experiments.RunTableIII(params)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if table == 4 || all {
		ran = true
		fmt.Println(experiments.RenderTableIV(params))
	}
	if table == 5 || all {
		ran = true
		res, err := experiments.RunTableV(params, simCfg, rng)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	letters := []string{}
	if fig != "" {
		letters = append(letters, fig)
	} else if all {
		letters = []string{"a", "b", "c", "d", "e", "f"}
	}
	for _, letter := range letters {
		ran = true
		res, err := experiments.RunFig4(letter, params, experiments.Fig4Config{SimConfig: simCfg}, rng)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if nversion || all {
		ran = true
		nvCfg := experiments.DefaultNVersionStudyConfig()
		nvCfg.Workers = workers
		res, err := experiments.RunNVersionStudy(nvCfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if diversity {
		ran = true
		cfg := experiments.QuickTableIIConfig()
		if !quick {
			cfg = experiments.DefaultTableIIConfig()
		}
		res, err := experiments.RunDiversityStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if campaign {
		ran = true
		cfg := experiments.QuickTableIIConfig()
		if !quick {
			cfg = experiments.DefaultTableIIConfig()
		}
		res, err := experiments.RunFaultSensitivity(cfg, 20, workers)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if inferbench {
		ran = true
		cfg := experiments.DefaultInferBenchConfig()
		cfg.GemmWorkers = workers
		cfg.Int8 = int8bench
		cfg.Seed = seed
		if quick {
			cfg.Iters = 5
		}
		res, err := experiments.RunInferBench(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -table 2..5, -fig a..f, -nversion, -diversity, -campaign, -inferbench, or -all")
	}
	return nil
}
