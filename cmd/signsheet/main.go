// Command signsheet renders a contact sheet of the synthetic traffic-sign
// dataset to a PNG, one row per class (or a selected range), so the GTSRB
// substitution can be inspected visually.
//
//	signsheet -o signs.png
//	signsheet -o hard.png -per-class 12 -noise 0.15
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"time"

	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

func main() {
	out := flag.String("o", "signs.png", "output PNG path")
	perClass := flag.Int("per-class", 8, "instances per class (columns)")
	firstClass := flag.Int("first", 0, "first class to render")
	lastClass := flag.Int("last", signs.NumClasses-1, "last class to render")
	noise := flag.Float64("noise", -1, "override pixel-noise sigma (-1 = dataset default)")
	seed := flag.Uint64("seed", 38, "render seed")
	var tele obs.CLI
	tele.RegisterFlags(flag.CommandLine)
	flag.Parse()

	rt, err := tele.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "signsheet:", err)
		os.Exit(1)
	}
	runErr := run(*out, *perClass, *firstClass, *lastClass, *noise, *seed, rt)
	if err := tele.Finish(map[string]any{
		"command": "signsheet", "seed": *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "signsheet:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "signsheet:", runErr)
		os.Exit(1)
	}
}

func run(out string, perClass, firstClass, lastClass int, noise float64, seed uint64, rt *obs.Runtime) error {
	if perClass < 1 {
		return fmt.Errorf("per-class must be positive, got %d", perClass)
	}
	if firstClass < 0 || lastClass >= signs.NumClasses || firstClass > lastClass {
		return fmt.Errorf("class range [%d, %d] outside [0, %d]", firstClass, lastClass, signs.NumClasses-1)
	}
	cfg := signs.DefaultConfig()
	cfg.Seed = seed
	if noise >= 0 {
		cfg.Noise = noise
	}

	const pad = 2
	cell := nn.InputSize + pad
	rows := lastClass - firstClass + 1
	sheet := image.NewRGBA(image.Rect(0, 0, perClass*cell+pad, rows*cell+pad))
	root := xrand.New(cfg.Seed)

	reg := rt.Metrics()
	var renderHist *obs.Histogram
	var tileCtr *obs.Counter
	if reg != nil {
		reg.Help("mvml_signsheet_render_seconds", "Per-tile render latency of the synthetic sign generator.")
		reg.Help("mvml_signsheet_tiles_total", "Tiles rendered, labelled by class.")
		renderHist = reg.Histogram("mvml_signsheet_render_seconds", obs.LatencyBuckets())
	}

	for row := 0; row < rows; row++ {
		class := firstClass + row
		r := root.Split("sheet", uint64(class))
		if reg != nil {
			tileCtr = reg.Counter("mvml_signsheet_tiles_total", "class", fmt.Sprintf("%d", class))
		}
		for col := 0; col < perClass; col++ {
			var start time.Time
			if reg != nil {
				start = time.Now()
			}
			img := signs.Render(class, r, cfg)
			renderHist.Observe(time.Since(start).Seconds())
			tileCtr.Inc()
			blit(sheet, img, pad+col*cell, pad+row*cell)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := png.Encode(f, sheet); err != nil {
		return fmt.Errorf("encoding %s: %w", out, err)
	}
	fmt.Printf("wrote %s (%d classes x %d instances)\n", out, rows, perClass)
	return nil
}

// blit copies one rendered sign tensor into the sheet at (x0, y0).
func blit(dst *image.RGBA, src *tensor.Tensor, x0, y0 int) {
	size := src.Shape[1]
	plane := size * size
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			idx := y*size + x
			dst.SetRGBA(x0+x, y0+y, color.RGBA{
				R: uint8(src.Data[idx]*255 + 0.5),
				G: uint8(src.Data[plane+idx]*255 + 0.5),
				B: uint8(src.Data[2*plane+idx]*255 + 0.5),
				A: 255,
			})
		}
	}
}
