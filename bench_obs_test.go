// Benchmarks for the observability layer's serving overhead: the same
// sequential Classify loop against one server with telemetry fully disabled
// and one with the complete stack attached (metrics, events, spans, per-layer
// profiler and a flight recorder). Run with
//
//	go test -run '^$' -bench '^BenchmarkServeObs' .
//
// or via `./bench.sh`, which parses the output into BENCH_obs.json and
// reports the relative overhead. The acceptance bar is <5% on the end-to-end
// request path.
package mvml_test

import (
	"testing"
	"time"

	"mvml/internal/health"
	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/obs/tsdb"
	"mvml/internal/serve"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

// obsBenchConfig serves the deterministic untrained lenet ensemble with one
// worker per version and no micro-batching, so the measured path is exactly
// admission → queue → forward ×3 → vote → reply per request.
func obsBenchConfig() serve.Config {
	cfg := serve.DefaultConfig()
	cfg.NewNetwork = func(version int, r *xrand.Rand) (*nn.Network, error) {
		return nn.NewModel(nn.ModelLeNet, signs.NumClasses, r)
	}
	cfg.WorkersPerVersion = 1
	cfg.MaxBatch = 1
	cfg.MaxBatchWait = 50 * time.Microsecond
	cfg.RequestTimeout = 5 * time.Second
	return cfg
}

func benchServe(b *testing.B, s *serve.Server) {
	b.Helper()
	img := signs.Render(0, xrand.New(3), signs.DefaultConfig())
	if _, err := s.Classify(img); err != nil { // warm the arenas
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeObs(b *testing.B) {
	b.Run("telemetry=off", func(b *testing.B) {
		s, err := serve.New(obsBenchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchServe(b, s)
	})
	b.Run("telemetry=on", func(b *testing.B) {
		rt := obs.NewRuntime(4096)
		fr, err := obs.NewFlightRecorder(b.TempDir(), 0, 0, rt.Spans(), rt.Tracer())
		if err != nil {
			b.Fatal(err)
		}
		rt.AttachFlightRecorder(fr)
		cfg := obsBenchConfig()
		cfg.ProfileLayers = true
		s, err := serve.New(cfg, rt)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchServe(b, s)
		if rt.Spans().Published() == 0 {
			b.Fatal("instrumented benchmark produced no spans")
		}
	})
	// The full telemetry pipeline: everything above plus tail sampling at
	// 10% normal traffic, the time-series store ingesting the retained
	// spans and rule evaluation. Same <5% bar — sampling should make the
	// span path cheaper, not dearer.
	b.Run("telemetry=sampled", func(b *testing.B) {
		rt := obs.NewRuntime(4096)
		fr, err := obs.NewFlightRecorder(b.TempDir(), 0, 0, rt.Spans(), rt.Tracer())
		if err != nil {
			b.Fatal(err)
		}
		rt.AttachFlightRecorder(fr)
		rt.SetSampler(obs.NewSampler(obs.SampleConfig{Rate: 0.1, Seed: 1}))
		store := tsdb.New(tsdb.Config{BucketSeconds: 1, Buckets: 600})
		store.Register(rt.Metrics())
		rules := tsdb.NewRules(store, 1, tsdb.DefaultServingRules(health.DefaultOptions()))
		rules.Register(rt.Metrics())
		rt.Spans().AttachSampled(tsdb.NewIngester(store, rules))
		cfg := obsBenchConfig()
		cfg.ProfileLayers = true
		s, err := serve.New(cfg, rt)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchServe(b, s)
		if rt.Spans().Published() == 0 {
			b.Fatal("instrumented benchmark produced no spans")
		}
	})
}
