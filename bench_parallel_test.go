// Benchmarks for the deterministic parallel runner: the two heaviest
// Monte-Carlo fan-outs (DSPN transient replications and drivesim episodes)
// at worker counts 1, 2, 4 and 8. Because results are worker-count-invariant
// by construction, these benchmarks measure pure scheduling cost/benefit;
// bench.sh parses them into BENCH_parallel.json. On a single-core machine
// expect ~1.0x at every width — the contract is that extra workers never
// change results and never cost more than goroutine bookkeeping.
package mvml_test

import (
	"fmt"
	"testing"

	"mvml/internal/experiments"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

var parallelWidths = []int{1, 2, 4, 8}

func BenchmarkParallelTransient(b *testing.B) {
	model, err := reliability.NewModel(3, reliability.DefaultParams(), true)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{300, 1523, 6092}
	for _, workers := range parallelWidths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := model.TransientReliability(times, 400, workers, xrand.New(uint64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[len(pts)-1].Reward.Mean, "R(6092s)")
			}
		})
	}
}

func BenchmarkParallelDrivesim(b *testing.B) {
	for _, workers := range parallelWidths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultCaseStudyConfig()
			cfg.RunsPerRoute = 2
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunTableVIII(cfg, 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Rows[0].FPS.Mean, "fps-1v")
			}
		})
	}
}
