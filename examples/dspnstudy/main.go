// DSPN study: build the paper's Fig. 3 reliability model directly with the
// petri package, sweep the rejuvenation interval, and print the resulting
// reliability curve together with the exact no-rejuvenation baseline — a
// miniature of the paper's Fig. 4(a).
//
//	go run ./examples/dspnstudy
package main

import (
	"fmt"
	"os"

	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dspnstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	params := reliability.DefaultParams()
	rng := xrand.New(42)

	// Exact baseline: the Fig. 2 model (reactive rejuvenation only).
	baseline, err := reliability.NewModel(3, params, false)
	if err != nil {
		return err
	}
	exact, err := baseline.SolveExact()
	if err != nil {
		return err
	}
	fmt.Printf("three-version system without proactive rejuvenation (exact): E[R] = %.6f\n\n", exact.Expected)

	fmt.Println("rejuvenation-interval sweep (DSPN simulation, Fig. 4(a) style):")
	fmt.Println("  1/gamma (s)   E[R]       95% CI")
	for _, interval := range []float64{50, 100, 300, 600, 1200, 2400} {
		p := params
		p.RejuvenationInterval = interval
		model, err := reliability.NewModel(3, p, true)
		if err != nil {
			return err
		}
		res, err := model.SolveSimulation(reliability.DefaultSimConfig(), rng.Split("sweep", uint64(interval)))
		if err != nil {
			return err
		}
		marker := ""
		if res.Expected < exact.Expected {
			marker = "  <- slower than no proactive rejuvenation at all"
		}
		fmt.Printf("  %8.0f      %.6f   [%.6f, %.6f]%s\n",
			interval, res.Expected, res.CI.Lo, res.CI.Hi, marker)
	}

	// Cross-validate one configuration against the Erlang approximation.
	model, err := reliability.NewModel(3, params, true)
	if err != nil {
		return err
	}
	sim, err := model.SolveSimulation(reliability.DefaultSimConfig(), rng.Split("xval", 0))
	if err != nil {
		return err
	}
	erl, err := model.SolveErlang(20)
	if err != nil {
		return err
	}
	fmt.Printf("\ncross-validation at 1/gamma = %.0fs: simulation %.6f vs Erlang-20 %.6f\n",
		params.RejuvenationInterval, sim.Expected, erl.Expected)
	return nil
}
