// Traffic-sign case study: train the three diverse classifiers (LeNet-,
// AlexNet- and ResNet-style) on the synthetic traffic-sign dataset, inject a
// calibrated PyTorchFI-style weight fault into each to manufacture the
// compromised versions, estimate the reliability parameters p, p' and α from
// the measured accuracies and error-set overlaps (Eqs. 6–9 of the paper),
// and evaluate the voting rules R.1–R.3 on the real model outputs.
//
//	go run ./examples/trafficsign          # quick configuration (~2 min)
//	go run ./examples/trafficsign -full    # full-scale training
package main

import (
	"flag"
	"fmt"
	"os"

	"mvml/internal/core"
	"mvml/internal/experiments"
	"mvml/internal/nn"
	"mvml/internal/reliability"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

func main() {
	full := flag.Bool("full", false, "full-scale dataset and training budget")
	flag.Parse()
	if err := run(*full); err != nil {
		fmt.Fprintln(os.Stderr, "trafficsign:", err)
		os.Exit(1)
	}
}

func run(full bool) error {
	cfg := experiments.QuickTableIIConfig()
	if full {
		cfg = experiments.DefaultTableIIConfig()
	}

	fmt.Println("training the three versions and injecting calibrated weight faults...")
	res, err := experiments.RunTableII(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())

	params := res.Params()
	fmt.Println(experiments.RenderTableIV(params))

	table3, err := experiments.RunTableIII(params)
	if err != nil {
		return err
	}
	fmt.Println(table3.Render())

	// Evaluate the actual voting rules against the test set with three
	// freshly trained healthy versions (the Table II pipeline left its
	// networks compromised, so retrain a small ensemble here).
	fmt.Println("evaluating majority voting over the real model outputs...")
	return evaluateVoting(cfg, params)
}

// evaluateVoting trains the ensemble again, wraps the networks as versions
// of a multi-version system, and measures voted accuracy vs. the best single
// model.
func evaluateVoting(cfg experiments.TableIIConfig, params reliability.Params) error {
	ds, err := signs.Generate(cfg.Dataset)
	if err != nil {
		return err
	}
	root := xrand.New(cfg.Seed + 1)
	var versions []core.Version[*tensor.Tensor, int]
	bestSingle := 0.0
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, signs.NumClasses, root.Split("init", uint64(name)))
		if err != nil {
			return err
		}
		if err := experiments.Train(net, ds.Train, cfg, root.Split("train", uint64(name))); err != nil {
			return err
		}
		acc, err := net.Accuracy(ds.Test)
		if err != nil {
			return err
		}
		if acc > bestSingle {
			bestSingle = acc
		}
		v, err := core.NewNNVersion(net, nil)
		if err != nil {
			return err
		}
		versions = append(versions, v)
	}

	sys, err := core.NewSystem[*tensor.Tensor, int](
		versions, core.NewEqualityVoter[int](), core.Config{DisableFaults: true}, root.Split("sys", 0))
	if err != nil {
		return err
	}
	correct, skipped := 0, 0
	for i, sample := range ds.Test {
		d, _, err := sys.Infer(float64(i), sample.X)
		if err != nil {
			return err
		}
		switch {
		case d.Skipped:
			skipped++
		case d.Value == sample.Label:
			correct++
		}
	}
	n := len(ds.Test)
	voted := float64(correct) / float64(n)
	model, err := params.StateReliability(reliability.State{Healthy: 3})
	if err != nil {
		return err
	}
	fmt.Printf("  best single model accuracy:    %.4f\n", bestSingle)
	fmt.Printf("  3-version voted accuracy:      %.4f (%d skips)\n", voted, skipped)
	fmt.Printf("  model prediction R(3,0,0):     %.4f\n", model)
	return nil
}
