// Quickstart: build a three-version ML system with a majority voter and
// time-triggered proactive rejuvenation, run it against a stream of
// classification requests while fault processes compromise the versions,
// and compare the measured output reliability with and without
// rejuvenation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"mvml/internal/core"
	"mvml/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three synthetic classifier versions calibrated to the paper's
	// fitted parameters: they err with probability p when healthy and p'
	// when compromised, with pairwise error dependency alpha.
	ensembleCfg := core.SyntheticEnsembleConfig{
		Versions: 3,
		Classes:  43,
		P:        0.0629,
		PPrime:   0.2404,
		Alpha:    0.3700,
		Seed:     38,
	}

	// Fault and rejuvenation timing, scaled down so state changes happen
	// within the demo (the paper's Table IV uses 1523 s / 300 s).
	faults := core.Config{
		MeanTimeToCompromise:      60,
		MeanTimeToFailure:         60,
		MeanReactiveRejuvenation:  0.5,
		MeanProactiveRejuvenation: 0.5,
		RejuvenationInterval:      15,
	}
	noRejuvenation := faults
	noRejuvenation.RejuvenationInterval = 0

	const (
		requests = 200_000
		period   = 0.05 // one inference every 50 ms of simulated time
	)

	for _, arm := range []struct {
		name string
		cfg  core.Config
	}{
		{"with proactive rejuvenation", faults},
		{"without proactive rejuvenation", noRejuvenation},
	} {
		versions, err := core.NewSyntheticEnsemble(ensembleCfg)
		if err != nil {
			return err
		}
		sys, err := core.NewSystem[core.LabeledInput, int](
			versions, core.NewEqualityVoter[int](), arm.cfg, xrand.New(7))
		if err != nil {
			return err
		}

		inputs := xrand.New(99)
		correct, wrong := 0, 0
		for i := 0; i < requests; i++ {
			truth := inputs.Intn(ensembleCfg.Classes)
			decision, _, err := sys.Infer(float64(i)*period, core.LabeledInput{ID: i, Truth: truth})
			if err != nil {
				return err
			}
			switch {
			case decision.Skipped:
				// The voter safely skipped (rule R.2): not an error.
			case decision.Value == truth:
				correct++
			default:
				wrong++
			}
		}
		stats := sys.Stats()
		fmt.Printf("%s:\n", arm.name)
		fmt.Printf("  output reliability: %.4f (correct %d, wrong %d, skipped %d)\n",
			float64(correct)/float64(requests), correct, wrong, stats.Skips)
		fmt.Printf("  skip ratio: %.4f\n", stats.SkipRatio())
		fmt.Printf("  time in each (healthy,compromised,down) state:\n")
		for state, frac := range sys.Occupancy() {
			if frac > 0.005 {
				fmt.Printf("    %v  %.3f\n", state, frac)
			}
		}
		fmt.Println()
	}
	return nil
}
