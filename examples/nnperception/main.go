// NN-in-the-loop perception: train three independent YOLite grid detectors
// (the repo's miniature stand-in for the paper's YOLOv5 variants), wrap them
// as versions of a multi-version system, drive a route, and show how
// PyTorchFI-style weight faults plus time-triggered rejuvenation play out
// with a real network in the loop.
//
//	go run ./examples/nnperception
package main

import (
	"fmt"
	"os"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/perception"
	"mvml/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nnperception:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := xrand.New(2025)
	names := []string{"yolite-s", "yolite-m", "yolite-l"}

	fmt.Println("training three diverse YOLite detectors (independent initialisations)...")
	var versions []core.Version[drivesim.Scene, []drivesim.Detection]
	for i, name := range names {
		net, err := perception.TrainYOLite(800, rng.Split("train", uint64(i)))
		if err != nil {
			return err
		}
		v, err := perception.NewNNDetectorVersion(name, net, rng.Split("version", uint64(i)))
		if err != nil {
			return err
		}
		versions = append(versions, v)
		fmt.Printf("  %s ready (%d parameters)\n", name, net.ParamCount())
	}

	for _, arm := range []struct {
		name string
		cfg  core.Config
	}{
		{"with rejuvenation (1/gamma = 3s)", core.CaseStudyConfig()},
		{"without rejuvenation", func() core.Config {
			c := core.CaseStudyConfig()
			c.RejuvenationInterval = 0
			c.DisableReactive = true
			return c
		}()},
	} {
		// Fresh streams per arm; reuse the same trained networks (Restore
		// resets them between arms via the version snapshot).
		for _, v := range versions {
			if err := v.Restore(); err != nil {
				return err
			}
		}
		sys, err := core.NewSystem[drivesim.Scene, []drivesim.Detection](
			versions, perception.NewDetectionVoter(4.5), arm.cfg, rng.Split("sys-"+arm.name, 0))
		if err != nil {
			return err
		}
		res, err := drivesim.Run(drivesim.Config{RouteNumber: 1, CruiseSpeed: 10},
			perception.NewPipelineFromSystem(sys), rng.Split("sim-"+arm.name, 0))
		if err != nil {
			return err
		}
		first := "NA"
		if res.FirstCollisionFrame >= 0 {
			first = fmt.Sprintf("%d", res.FirstCollisionFrame)
		}
		fmt.Printf("\n%s:\n", arm.name)
		fmt.Printf("  frames %d, collision rate %.2f%%, first collision %s, skips %.1f%%\n",
			res.TotalFrames, res.CollisionRate(), first, 100*res.SkipRatio())
		for _, m := range sys.Modules() {
			comp, crashes, rejuv := m.Stats()
			fmt.Printf("  %s: %d weight-fault injections, %d crashes, %d weight reloads\n",
				m.Name(), comp, crashes, rejuv)
		}
	}
	return nil
}
