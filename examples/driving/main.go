// Driving case study: run one route of the 2-D autonomous-driving simulator
// with a three-version perception pipeline, with and without time-triggered
// rejuvenation, and report the collision metrics the paper's Table VI uses.
//
//	go run ./examples/driving                 # route #1, one run per arm
//	go run ./examples/driving -route 5 -runs 3
package main

import (
	"flag"
	"fmt"
	"os"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/perception"
	"mvml/internal/xrand"
)

func main() {
	route := flag.Int("route", 1, "route number (1-8)")
	runs := flag.Int("runs", 1, "runs per arm")
	seed := flag.Uint64("seed", 2025, "root seed")
	flag.Parse()
	if err := run(*route, *runs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "driving:", err)
		os.Exit(1)
	}
}

func run(route, runs int, seed uint64) error {
	root := xrand.New(seed)
	for _, arm := range []struct {
		name       string
		rejuvenate bool
	}{
		{"WITH time-triggered rejuvenation", true},
		{"WITHOUT rejuvenation", false},
	} {
		sysCfg := core.CaseStudyConfig()
		if !arm.rejuvenate {
			sysCfg.RejuvenationInterval = 0
			sysCfg.DisableReactive = true
		}
		fmt.Printf("%s (route #%d, 1/lambda_c=%.0fs, 1/gamma=%.0fs):\n",
			arm.name, route, sysCfg.MeanTimeToCompromise, sysCfg.RejuvenationInterval)
		for run := 0; run < runs; run++ {
			rs := uint64(route*100 + run)
			pipe, err := perception.NewPipeline(3, perception.DefaultDetectorParams(),
				sysCfg, rs, root.Split("sys", rs))
			if err != nil {
				return err
			}
			res, err := drivesim.Run(drivesim.Config{RouteNumber: route, CruiseSpeed: 10},
				pipe, root.Split("sim", rs))
			if err != nil {
				return err
			}
			first := "NA"
			if res.FirstCollisionFrame >= 0 {
				first = fmt.Sprintf("%d", res.FirstCollisionFrame)
			}
			fmt.Printf("  run %d (%s): frames %d, collisions %.2f%%, first collision %s, skips %.1f%%\n",
				run, res.Route, res.TotalFrames, res.CollisionRate(), first, 100*res.SkipRatio())

			// Show how the module health states evolved.
			for _, m := range pipe.System().Modules() {
				comp, crashes, rejuv := m.Stats()
				fmt.Printf("    %s: %d compromises, %d crashes, %d rejuvenations, final state %s\n",
					m.Name(), comp, crashes, rejuv, m.State())
			}
		}
		fmt.Println()
	}
	return nil
}
