module mvml

go 1.22
